"""Fused columnar query compiler: ``QueryPlan`` -> numpy kernel pipeline.

The row operator DAG is the reference semantics; this module is the
engine's single-process fast path.  ``compile_plan`` lowers a
:class:`~repro.engine.planner.QueryPlan` whose shape it understands onto
a fused pipeline of :mod:`repro.engine.kernels` stages around a
:class:`~repro.core.columnar.ColumnarImpatienceSorter`:

* pre-sort (pushed-down, §IV sort-as-needed): bitmap ``where`` over
  structured predicates, ``select_columns`` projection, and
  tumbling/hopping window alignment — all *below* the sort point, so
  selection shrinks the sorted volume and windowing reduces disorder,
  visible in the sorter's :class:`~repro.core.stats.SorterStats`.
  String where-clauses lower here too: order-preserving dictionary
  encoding (:mod:`repro.core.strings`) turns string equality into one
  int64 code comparison (``key_str_eq`` / ``field_str_eq``) and string
  prefix match into one code-range test (``key_str_prefix`` /
  ``field_str_prefix``), so string-keyed plans compile to the exact
  same fused int masks — no byte comparisons, no row-path fallback;
* the columnar sorter itself, carrying the post-stage sync time, the
  grouping key, and the aggregated value as parallel ``int64`` columns
  (the original window start rides as column 0 so the ADJUST late
  policy keeps row-engine semantics: adjusted sort position, original
  window);
* post-sort: either the grouped/ungrouped windowed-aggregate kernel
  (``count``/``sum``/``avg``/``min``/``max``) with an optional chained
  ``top_k`` kernel, or one of the pass-through terminal kernels —
  ``distinct``, ``session_window``, ``coalesce``, ``self_join``,
  ``pattern_match``, ``group_apply`` (over a traceable straight-line
  body), and raw ``top_k`` — consuming full ``(sync, other, key,
  payload…)`` rows in the sorter's deterministic emission order.

Anything else — duration rewrites, opaque Python lambdas, custom
sorters — raises :class:`UnsupportedPlanError` with a human-readable
reason, and :func:`execute_plan` (the engine behind
``QueryPlan.run(engine="auto")``) falls back to the row engine
silently.  Equivalence is byte-for-byte: the compiled path replicates
ingress punctuation policy, window close rules, clamped forwarded
punctuations, emission order, and late-policy behavior exactly
(differentially fuzzed in ``tests/test_fuzz_queries.py``).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.columnar import ColumnarImpatienceSorter
from repro.sorting.external import ExternalColumnarSorter
from repro.core.errors import QueryBuildError
from repro.core.late import LatePolicy
from repro.engine.event import Event
from repro.engine.kernels import (
    AGGREGATE_SPECS,
    CoalesceKernel,
    DistinctKernel,
    GroupApplyKernel,
    GroupedWindowKernel,
    PatternKernel,
    Predicate,
    RawTopKKernel,
    SelfJoinKernel,
    SessionKernel,
    WindowTopKKernel,
    _KeyField,
    _PayloadField,
)
from repro.engine.operators.aggregates import Avg, Count, Max, Min, Sum
from repro.observability.snapshot import PipelineSnapshot

__all__ = [
    "UnsupportedPlanError",
    "CompiledPlan",
    "PlanResult",
    "analyze_plan",
    "compile_plan",
    "execute_plan",
]

_NEG_INF = float("-inf")


class UnsupportedPlanError(Exception):
    """The plan has no columnar lowering; ``reason`` says why."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def _resolve(step, names):
    """Merge a step's positional and keyword arguments by parameter name."""
    values = dict(zip(names, step.args))
    values.update(dict(step.kwargs))
    return values


# ---------------------------------------------------------------------------
# Pre-sort stages: batch transform + punctuation transform, like operators.
# ---------------------------------------------------------------------------


class _WhereStage:
    name = "where"

    def __init__(self, predicate):
        self.predicate = predicate

    def apply(self, sync, other, keys, cols):
        mask = self.predicate.mask(sync, keys, cols)
        if mask.all():
            return sync, other, keys, cols
        return (
            sync[mask],
            None if other is None else other[mask],
            keys[mask],
            [col[mask] for col in cols],
        )

    def transform_punct(self, timestamp):
        return timestamp

    def describe(self):
        return f"where[{self.predicate!r}]"


class _ProjectStage:
    name = "select_columns"

    def __init__(self, columns):
        self.columns = tuple(columns)

    def apply(self, sync, other, keys, cols):
        return sync, other, keys, [cols[index] for index in self.columns]

    def transform_punct(self, timestamp):
        return timestamp

    def describe(self):
        return f"select_columns{self.columns}"


class _WindowStage:
    name = "window"

    def __init__(self, size, hop):
        self.size = size
        self.hop = hop

    def apply(self, sync, other, keys, cols):
        # HoppingWindow.with_times: sync = t - t % hop, other = sync + size.
        # ``other`` is only materialized for pass-through terminals; the
        # aggregate path threads None.
        sync = sync - sync % self.hop
        return (
            sync,
            None if other is None else sync + self.size,
            keys,
            cols,
        )

    def transform_punct(self, timestamp):
        # HoppingWindow.on_punctuation: strongest promise expressible on
        # the aligned stream is one tick below the alignment of T + 1.
        next_raw = timestamp + 1
        return next_raw - next_raw % self.hop - 1

    def describe(self):
        if self.hop == self.size:
            return f"tumbling_window[{self.size}]"
        return f"hopping_window[{self.size},{self.hop}]"


# ---------------------------------------------------------------------------
# Compilation.
# ---------------------------------------------------------------------------


def _lower_aggregate(aggregate):
    """Map a row aggregate instance onto a kernel spec + value column."""
    if type(aggregate) is Count:
        return AGGREGATE_SPECS["count"], None
    for cls, name in ((Sum, "sum"), (Avg, "avg"), (Min, "min"), (Max, "max")):
        if type(aggregate) is cls:
            selector = aggregate.selector
            if not isinstance(selector, _PayloadField):
                raise UnsupportedPlanError(
                    f"{cls.__name__} selector is an opaque Python callable "
                    "(use repro.engine.kernels.field(i))"
                )
            return AGGREGATE_SPECS[name], selector.index
    raise UnsupportedPlanError(
        f"aggregate {type(aggregate).__name__} has no columnar kernel"
    )


def _require_key_field(key_fn, method):
    """Grouping must use the event key column (None or ``key_field()``)."""
    if key_fn is not None and not isinstance(key_fn, _KeyField):
        raise UnsupportedPlanError(
            f"{method}() key_fn is an opaque Python callable"
        )


class _BodyProbe:
    """Traces a ``group_apply`` body to a straight stage chain.

    The body runs against this probe instead of a real stream: structured
    ``where`` and one window lower onto the same pre-sort stage classes
    (applied *post*-sort inside the kernel — row-local transforms are
    position-independent), and an ``aggregate``/``count`` terminal lowers
    onto the grouped window fold.  Anything else has no columnar kernel.
    """

    def __init__(self):
        self.stages = []
        self.window = None
        self.spec = None
        self.value_index = None
        self._terminated = False

    def _check_open(self, method):
        if self._terminated:
            raise UnsupportedPlanError(
                f"group_apply() body continues with {method}() after its "
                "aggregate"
            )

    def where(self, predicate):
        self._check_open("where")
        if not isinstance(predicate, Predicate):
            raise UnsupportedPlanError(
                "group_apply() body where() predicate is an opaque Python "
                "callable"
            )
        self.stages.append(_WhereStage(predicate))
        return self

    def tumbling_window(self, size):
        return self.hopping_window(size, size)

    def hopping_window(self, size, hop=None):
        self._check_open("hopping_window")
        if self.window is not None:
            raise UnsupportedPlanError(
                "group_apply() body has more than one window"
            )
        hop = size if hop is None else hop
        if not isinstance(size, int) or not isinstance(hop, int) \
                or size < 1 or hop < 1:
            raise UnsupportedPlanError(
                "group_apply() body window size/hop must be positive ints"
            )
        self.stages.append(_WindowStage(size, hop))
        self.window = size
        return self

    def count(self):
        return self.aggregate(Count())

    def aggregate(self, aggregate):
        self._check_open("aggregate")
        if self.window is None:
            raise UnsupportedPlanError(
                "group_apply() body aggregates need a tumbling/hopping "
                "window stage"
            )
        self.spec, self.value_index = _lower_aggregate(aggregate)
        self._terminated = True
        return self

    def __getattr__(self, name):
        raise UnsupportedPlanError(
            f"group_apply() body uses {name}(), which has no columnar kernel"
        )


def _probe_group_apply(query_fn):
    """Trace a group_apply body; returns (stages, window, spec, index)."""
    if query_fn is None:
        raise UnsupportedPlanError("group_apply() needs a query_fn")
    probe = _BodyProbe()
    try:
        result = query_fn(probe)
    except UnsupportedPlanError:
        raise
    except Exception as exc:
        raise UnsupportedPlanError(
            f"group_apply() body is an opaque Python callable ({exc})"
        )
    if result is not probe:
        raise UnsupportedPlanError(
            "group_apply() body is an opaque Python callable (it does not "
            "return the traced operator chain)"
        )
    return tuple(probe.stages), probe.window, probe.spec, probe.value_index


def compile_plan(plan) -> "CompiledPlan":
    """Lower ``plan`` onto fused kernels or raise ``UnsupportedPlanError``.

    The plan compiles *as written*: operator placement relative to the
    sort is semantics (pushing a window below the sort changes which
    events count as late), so the compiler never hoists steps itself —
    a plan with order-insensitive steps still above the sort falls back
    to the row engine with a hint to call ``plan.optimized()``.
    Compilation demands: pre-sort steps drawn from structured ``where``
    / ``select_columns`` / window alignment, a default sorter (late
    policy allowed), and a known terminal — a windowed aggregate with an
    optional chained ``top_k``, or one of the pass-through terminals
    (``distinct``, ``session_window``, ``coalesce``, ``self_join``,
    ``pattern_match``, ``group_apply`` over a traceable body, raw
    ``top_k``) lowered onto a :class:`~repro.engine.kernels`
    terminal kernel.
    """
    try:
        plan.validate()
    except QueryBuildError as exc:
        raise UnsupportedPlanError(str(exc))
    steps = plan.steps
    sort_index = next(
        i for i, step in enumerate(steps) if step.method == "sort"
    )
    pre = steps[:sort_index]
    sort_kwargs = dict(steps[sort_index].kwargs)
    post = steps[sort_index + 1:]

    if sort_kwargs.get("sorter") is not None:
        raise UnsupportedPlanError(
            "custom sorter factory is opaque to the compiler"
        )
    late_policy = sort_kwargs.get("late_policy") or LatePolicy.DROP

    stages = []
    window_size = None
    for step in pre:
        method = step.method
        if method == "where":
            values = _resolve(step, ("predicate",))
            predicate = values.get("predicate")
            if not isinstance(predicate, Predicate):
                raise UnsupportedPlanError(
                    "where() predicate is an opaque Python callable "
                    "(use repro.engine.kernels field/key_field/sync_field "
                    "expressions)"
                )
            stages.append(_WhereStage(predicate))
        elif method == "select_columns":
            values = _resolve(step, ("columns",))
            columns = values.get("columns")
            try:
                columns = tuple(columns)
            except TypeError:
                raise UnsupportedPlanError(
                    "select_columns() expects an iterable of column indices"
                )
            if not columns or not all(
                isinstance(c, int) and c >= 0 for c in columns
            ):
                raise UnsupportedPlanError(
                    "select_columns() indices must be non-negative ints"
                )
            stages.append(_ProjectStage(columns))
        elif method in ("tumbling_window", "hopping_window"):
            if method == "tumbling_window":
                values = _resolve(step, ("size",))
                size = values.get("size")
                hop = size
            else:
                values = _resolve(step, ("size", "hop"))
                size = values.get("size")
                hop = values.get("hop", size)
            if not isinstance(size, int) or not isinstance(hop, int) \
                    or size < 1 or hop < 1:
                raise UnsupportedPlanError(
                    "window size/hop must be positive ints"
                )
            stages.append(_WindowStage(size, hop))
            window_size = size
        elif method == "select":
            raise UnsupportedPlanError(
                "select() projector is an opaque Python callable"
            )
        else:
            raise UnsupportedPlanError(
                f"{method}() has no columnar kernel"
            )

    if not post:
        raise UnsupportedPlanError(
            "no windowed aggregate terminal after the sort"
        )
    terminal = post[0]
    if terminal.method in (
        "where", "select", "select_columns", "tumbling_window",
        "hopping_window", "alter_duration", "clip_duration",
    ):
        raise UnsupportedPlanError(
            f"{terminal.method}() runs above the sort; apply "
            "plan.optimized() to push it down for the columnar path"
        )
    rest = list(post[1:])
    grouped = False
    spec = None
    value_index = None
    kernel_factory = None
    method = terminal.method
    if method == "count":
        spec, value_index = AGGREGATE_SPECS["count"], None
    elif method == "aggregate":
        values = _resolve(terminal, ("aggregate",))
        spec, value_index = _lower_aggregate(values.get("aggregate"))
    elif method == "group_aggregate":
        values = _resolve(terminal, ("aggregate", "key_fn"))
        _require_key_field(values.get("key_fn"), "group_aggregate")
        spec, value_index = _lower_aggregate(values.get("aggregate"))
        grouped = True
    elif method == "distinct":
        values = _resolve(terminal, ("selector",))
        selector = values.get("selector")
        if selector is None:
            selector_index = None
        elif isinstance(selector, _PayloadField):
            selector_index = selector.index
        else:
            raise UnsupportedPlanError(
                "distinct() selector is an opaque Python callable "
                "(use repro.engine.kernels.field(i))"
            )
        kernel_factory = lambda: DistinctKernel(selector_index)  # noqa: E731
    elif method == "session_window":
        values = _resolve(terminal, ("timeout", "aggregate", "key_fn"))
        _require_key_field(values.get("key_fn"), "session_window")
        timeout = values.get("timeout")
        if not isinstance(timeout, int) or timeout < 1:
            raise UnsupportedPlanError(
                "session_window() timeout must be a positive int"
            )
        session_agg = values.get("aggregate")
        if session_agg is None:
            fold, fold_index = "count", None
        else:
            fold_spec, fold_index = _lower_aggregate(session_agg)
            fold = fold_spec.name
        kernel_factory = (  # noqa: E731
            lambda: SessionKernel(timeout, fold, fold_index)
        )
    elif method == "coalesce":
        values = _resolve(terminal, ("combine", "key_fn"))
        if values.get("combine") is not None:
            raise UnsupportedPlanError(
                "coalesce() combine is an opaque Python callable"
            )
        _require_key_field(values.get("key_fn"), "coalesce")
        kernel_factory = CoalesceKernel
    elif method == "self_join":
        values = _resolve(terminal, ("result_selector",))
        if values.get("result_selector") is not None:
            raise UnsupportedPlanError(
                "self_join() result_selector is an opaque Python callable"
            )
        kernel_factory = SelfJoinKernel
    elif method == "pattern_match":
        values = _resolve(terminal, ("first", "second", "within", "key_fn"))
        first = values.get("first")
        second = values.get("second")
        if not isinstance(first, Predicate) \
                or not isinstance(second, Predicate):
            raise UnsupportedPlanError(
                "pattern_match() step predicates are opaque Python "
                "callables (use repro.engine.kernels "
                "field/key_field/sync_field expressions)"
            )
        within = values.get("within")
        if not isinstance(within, int) or within < 1:
            raise UnsupportedPlanError(
                "pattern_match() within must be a positive int"
            )
        _require_key_field(values.get("key_fn"), "pattern_match")
        kernel_factory = (  # noqa: E731
            lambda: PatternKernel(first, second, within)
        )
    elif method == "group_apply":
        values = _resolve(terminal, ("query_fn", "key_fn"))
        _require_key_field(values.get("key_fn"), "group_apply")
        body_stages, body_window, body_spec, body_index = \
            _probe_group_apply(values.get("query_fn"))
        kernel_factory = (  # noqa: E731
            lambda: GroupApplyKernel(
                body_stages, body_window, body_spec, body_index
            )
        )
    elif method == "top_k":
        # Raw top-k became lowerable once every sorter resolved
        # equal-sync ties by arrival order (tie_break="arrival").
        values = _resolve(terminal, ("k", "score_fn"))
        if values.get("score_fn") is not None:
            raise UnsupportedPlanError(
                "top_k() score_fn is an opaque Python callable"
            )
        raw_k = values.get("k")
        if not isinstance(raw_k, int) or raw_k < 1:
            raise UnsupportedPlanError("top_k() k must be a positive int")
        kernel_factory = lambda: RawTopKKernel(raw_k)  # noqa: E731
    else:
        raise UnsupportedPlanError(f"{method}() is not vectorized")

    if kernel_factory is not None:
        if rest:
            raise UnsupportedPlanError(
                f"{rest[0].method}() after {method}() is not vectorized"
            )
        return CompiledPlan(
            stages, late_policy, window_size, None, None, False, None,
            method, kernel_factory=kernel_factory,
        )

    top_k = None
    if rest and rest[0].method == "top_k":
        values = _resolve(rest[0], ("k", "score_fn"))
        if values.get("score_fn") is not None:
            raise UnsupportedPlanError(
                "top_k() score_fn is an opaque Python callable"
            )
        k = values.get("k")
        if not isinstance(k, int) or k < 1:
            raise UnsupportedPlanError("top_k() k must be a positive int")
        top_k = k
        rest = rest[1:]
    if rest:
        raise UnsupportedPlanError(
            f"{rest[0].method}() after the aggregate is not vectorized"
        )
    if window_size is None:
        raise UnsupportedPlanError(
            "windowed aggregates need a tumbling/hopping window ahead of "
            "the sort"
        )
    return CompiledPlan(
        stages, late_policy, window_size, spec, value_index, grouped,
        top_k, terminal.method,
    )


def analyze_plan(plan):
    """Which execution path the plan gets: ``(path, reason)``.

    ``("columnar", None)`` when compilation succeeds, else
    ``("row", reason)``.
    """
    try:
        compile_plan(plan)
    except UnsupportedPlanError as exc:
        return "row", exc.reason
    return "columnar", None


# ---------------------------------------------------------------------------
# Per-kernel metrics (operator-shaped for PipelineSnapshot).
# ---------------------------------------------------------------------------


class _KernelMetrics:
    __slots__ = (
        "name", "batches", "events_in", "events_out",
        "punct_in", "punct_out", "busy_s", "peak",
    )

    def __init__(self, name):
        self.name = name
        self.batches = 0
        self.events_in = 0
        self.events_out = 0
        self.punct_in = 0
        self.punct_out = 0
        self.busy_s = 0.0
        self.peak = 0

    def note_batch(self, n_in, n_out, seconds):
        self.batches += 1
        self.events_in += int(n_in)
        self.events_out += int(n_out)
        self.busy_s += seconds

    def note_punct(self, forwarded, seconds=0.0):
        self.punct_in += 1
        if forwarded:
            self.punct_out += 1
        self.busy_s += seconds

    def doc(self) -> dict:
        ns_per_event = (
            self.busy_s * 1e9 / self.events_in if self.events_in else 0.0
        )
        return {
            "name": self.name,
            "events": {"in": self.events_in, "out": self.events_out},
            "punctuations": {"in": self.punct_in, "out": self.punct_out},
            "flushes": 1,
            "busy_s": {
                "event": self.busy_s, "punctuation": 0.0, "flush": 0.0,
                "total": self.busy_s,
            },
            "occupancy": {"peak": self.peak, "samples": 0, "timeline": []},
            "kernel": {
                "batches": self.batches,
                "ns_per_event": ns_per_event,
            },
        }


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------


class PlanResult:
    """Collector-shaped result of ``QueryPlan.run``.

    Mirrors :class:`~repro.engine.operators.sink.Collector` (``events``,
    ``punctuations``, ``completed``, ``sync_times``, ``payloads``) and
    adds ``engine`` (``"columnar"`` or ``"row"``), ``reason`` (why the
    row path was taken, ``None`` on the columnar path), and
    ``snapshot()`` — per-kernel metrics for compiled runs, the attached
    registry's snapshot for row runs.
    """

    def __init__(self, events, punctuations, completed, engine,
                 reason=None, operator_docs=None, registry=None, meta=None,
                 spill=None):
        self.events = events
        self.punctuations = punctuations
        self.completed = completed
        self.engine = engine
        self.reason = reason
        self.spill = spill
        self._operator_docs = operator_docs
        self._registry = registry
        self._meta = dict(meta or {})

    @property
    def sync_times(self):
        return [event.sync_time for event in self.events]

    @property
    def payloads(self):
        return [event.payload for event in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self, meta=None, memory=None):
        """A :class:`PipelineSnapshot` of the execution, or ``None``.

        Columnar runs always carry per-kernel metrics; row runs carry
        one only when a :class:`MetricsRegistry` was attached.
        """
        merged = dict(self._meta)
        merged.update(meta or {})
        merged.setdefault("engine", self.engine)
        if self.reason:
            merged.setdefault("engine_reason", self.reason)
        if self._operator_docs is not None:
            return PipelineSnapshot(
                self._operator_docs, memory=memory, meta=merged,
                spill=self.spill,
            )
        if self._registry is not None:
            return self._registry.snapshot(
                memory=memory, meta=merged, spill=self.spill,
            )
        return None


class CompiledPlan:
    """An executable fused pipeline produced by :func:`compile_plan`."""

    def __init__(self, stages, late_policy, window_size, spec, value_index,
                 grouped, top_k, terminal, kernel_factory=None):
        self.stages = stages
        self.late_policy = late_policy
        self.window_size = window_size
        self.spec = spec
        self.value_index = value_index
        self.grouped = grouped
        self.top_k = top_k
        self.terminal = terminal
        # Pass-through terminals consume full rows, so the sorter carries
        # (sync, other, key, *payload) — column count known only once the
        # post-stage payload arity is (at the first chunk).  The aggregate
        # path carries exactly the columns its fold needs.
        self.kernel_factory = kernel_factory
        self.pass_through = kernel_factory is not None
        if self.pass_through:
            self.columns = None
            self.terminal_label = kernel_factory().describe()
        else:
            self.terminal_label = None
            self.columns = 1 + (1 if grouped else 0) + (
                1 if spec.needs_value else 0
            )

    def describe(self):
        """Kernel stage labels in pipeline order (for EXPLAIN output)."""
        labels = [stage.describe() for stage in self.stages]
        labels.append(f"columnar_sort[{self.late_policy.name}]")
        if self.pass_through:
            labels.append(self.terminal_label)
            return labels
        kind = "group_aggregate" if self.grouped else "aggregate"
        labels.append(f"{kind}[{self.spec.name}]")
        if self.top_k is not None:
            labels.append(f"top_k[{self.top_k}]")
        return labels

    def run(self, kind, source, punctuation_frequency=None,
            reorder_latency=0, batch_size=8192, reason=None,
            memory_budget=None):
        """Execute over a ``("dataset", Dataset)`` or ``("events", list)``
        source, replicating the row ingress punctuation policy."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        execution = _Execution(self, memory_budget=memory_budget)
        try:
            return self._drive(
                execution, kind, source, punctuation_frequency,
                reorder_latency, batch_size, reason,
            )
        finally:
            execution.close()

    def _drive(self, execution, kind, source, punctuation_frequency,
               reorder_latency, batch_size, reason):
        if kind == "dataset":
            n = len(source.timestamps)
            arity = len(source.payloads[0]) if n else 0
            chunker = _dataset_chunk
        else:
            n = len(source)
            arity = len(source[0].payload) if n else 0
            chunker = _events_chunk
        need_other = self.pass_through
        high_watermark = None
        last_punctuation = _NEG_INF
        position = 0
        frequency = punctuation_frequency
        while position < n:
            if frequency:
                room = frequency - (position % frequency)
            else:
                room = n - position
            stop = min(position + batch_size, position + room, n)
            t0 = perf_counter()
            sync, other, keys, cols = chunker(
                source, position, stop, arity, need_other
            )
            execution.ingress.note_batch(
                stop - position, stop - position, perf_counter() - t0
            )
            chunk_max = int(sync.max())
            if high_watermark is None or chunk_max > high_watermark:
                high_watermark = chunk_max
            execution.process_chunk(sync, other, keys, cols)
            position = stop
            if frequency and position % frequency == 0:
                candidate = high_watermark - reorder_latency
                if candidate > last_punctuation:
                    last_punctuation = candidate
                    execution.punctuate(candidate)
        if high_watermark is not None:
            # Ingress appends a final end-of-data punctuation at the high
            # watermark unconditionally (ingress_events).
            execution.punctuate(high_watermark)
        execution.flush()
        return execution.result(reason)


def _dataset_chunk(dataset, start, stop, arity, need_other=False):
    sync = np.asarray(dataset.timestamps[start:stop], dtype=np.int64)
    # Dataset ingress events carry the point interval [t, t + 1).
    other = sync + 1 if need_other else None
    keys = np.asarray(dataset.keys[start:stop], dtype=np.int64)
    if arity:
        matrix = np.asarray(dataset.payloads[start:stop], dtype=np.int64)
        cols = [matrix[:, c] for c in range(arity)]
    else:
        cols = []
    return sync, other, keys, cols


def _events_chunk(events, start, stop, arity, need_other=False):
    count = stop - start
    chunk = events[start:stop]
    sync = np.fromiter(
        (event.sync_time for event in chunk), np.int64, count
    )
    other = (
        np.fromiter((event.other_time for event in chunk), np.int64, count)
        if need_other else None
    )
    keys = np.fromiter((event.key for event in chunk), np.int64, count)
    if arity:
        matrix = np.asarray(
            [event.payload for event in chunk], dtype=np.int64
        )
        cols = [matrix[:, c] for c in range(arity)]
    else:
        cols = []
    return sync, other, keys, cols


class _Execution:
    """One run's mutable state: sorter, kernels, sinks, metrics."""

    def __init__(self, compiled, memory_budget=None):
        self.compiled = compiled
        self.memory_budget = memory_budget
        self.pass_through = compiled.pass_through
        if self.pass_through:
            # Sorter columns = 3 + post-stage payload arity, known only
            # at the first chunk (select_columns changes the arity).
            self.sorter = None
            self.terminal = compiled.kernel_factory()
            self.aggregate = None
            self.topk = None
        else:
            self.sorter = self._make_sorter(compiled.columns)
            self.terminal = None
            self.aggregate = GroupedWindowKernel(
                compiled.window_size, compiled.spec, grouped=compiled.grouped
            )
            self.topk = (
                WindowTopKKernel(compiled.window_size, compiled.top_k)
                if compiled.top_k is not None else None
            )
        # Pre-sorting each ingress chunk turns it into one ascending
        # segment, so run placement is a handful of chunk-sized deals
        # instead of a Python loop over every descent.  Legal because
        # the lateness mask is order-free within a chunk and every
        # downstream aggregate kernel re-sorts (lexsort/stable-merge) —
        # except under RAISE, where "the first late event" must mean
        # arrival order to keep the row engine's exception args
        # byte-identical, and under ADJUST for pass-through terminals,
        # where late events with differing raw syncs collapse onto one
        # adjusted sort key and must keep their *arrival* tie order.
        late = compiled.late_policy
        self.presort = late is not LatePolicy.RAISE and not (
            self.pass_through and late is LatePolicy.ADJUST
        )
        self.events = []
        self.punctuations = []
        self.ingress = _KernelMetrics("ingress")
        self.stage_metrics = [
            _KernelMetrics(stage.name) for stage in compiled.stages
        ]
        self.sort_metrics = _KernelMetrics("sort")
        kind = "group_aggregate" if compiled.grouped else compiled.terminal
        self.agg_metrics = _KernelMetrics(kind)
        self.topk_metrics = (
            _KernelMetrics("top_k") if self.topk is not None else None
        )

    def _make_sorter(self, columns):
        if self.memory_budget is None:
            return ColumnarImpatienceSorter(
                late_policy=self.compiled.late_policy, columns=columns
            )
        # Bounded-memory path: byte-identical output, cold runs
        # spill to disk (repro.sorting.external).
        return ExternalColumnarSorter(
            self.memory_budget, late_policy=self.compiled.late_policy,
            columns=columns,
        )

    # -- dataflow ---------------------------------------------------------

    def process_chunk(self, sync, other, keys, cols):
        for stage, metrics in zip(
            self.compiled.stages, self.stage_metrics
        ):
            t0 = perf_counter()
            n_in = sync.size
            sync, other, keys, cols = stage.apply(sync, other, keys, cols)
            metrics.note_batch(n_in, sync.size, perf_counter() - t0)
        t0 = perf_counter()
        if self.pass_through:
            columns = [sync, other, keys, *cols]
        else:
            columns = [sync]
            if self.compiled.grouped:
                columns.append(keys)
            if self.compiled.spec.needs_value:
                columns.append(cols[self.compiled.value_index])
        if self.presort and sync.size > 1:
            order = np.argsort(sync, kind="stable")
            columns = [column[order] for column in columns]
            sync = columns[0]
        if self.sorter is None:
            self.sorter = self._make_sorter(len(columns))
        self.sorter.insert_batch(sync, tuple(columns))
        self.sort_metrics.note_batch(sync.size, 0, perf_counter() - t0)
        self.sort_metrics.peak = self.sorter.stats.max_buffered

    def punctuate(self, raw_timestamp):
        timestamp = raw_timestamp
        for stage, metrics in zip(
            self.compiled.stages, self.stage_metrics
        ):
            timestamp = stage.transform_punct(timestamp)
            metrics.note_punct(True)
        t0 = perf_counter()
        released = (
            self.sorter.on_punctuation(timestamp)
            if self.sorter is not None else None
        )
        self.sort_metrics.note_punct(True, perf_counter() - t0)
        if released is not None:
            self.sort_metrics.events_out += int(released[0].size)
            self.sort_metrics.peak = self.sorter.stats.max_buffered
        if self.pass_through:
            self._downstream_pass(released, timestamp)
        else:
            self._downstream(released, timestamp)

    def flush(self):
        t0 = perf_counter()
        released = self.sorter.flush() if self.sorter is not None else None
        self.sort_metrics.busy_s += perf_counter() - t0
        if released is not None:
            self.sort_metrics.events_out += int(released[0].size)
        if self.pass_through:
            self._downstream_pass(released, None)
        else:
            self._downstream(released, None)

    def _downstream_pass(self, released, timestamp):
        """Feed one sorter round to the pass-through terminal kernel."""
        terminal = self.terminal
        t0 = perf_counter()
        out = []
        n_in = 0
        if released is not None:
            _, columns = released
            n_in = int(columns[0].size)
            if n_in:
                out.extend(terminal.ingest(
                    columns[0], columns[1], columns[2], list(columns[3:])
                ))
        if timestamp is not None:
            closed, puncts = terminal.punctuate(timestamp)
        else:
            closed, puncts = terminal.flush()
        out.extend(closed)
        self.agg_metrics.note_batch(n_in, len(out), perf_counter() - t0)
        if timestamp is not None:
            self.agg_metrics.note_punct(bool(puncts))
        self.agg_metrics.peak = max(
            self.agg_metrics.peak, terminal.buffered() + len(out)
        )
        self.events.extend(out)
        self.punctuations.extend(puncts)

    def _downstream(self, released, timestamp):
        compiled = self.compiled
        _, columns = released
        starts = columns[0]
        keys = columns[1] if compiled.grouped else None
        values = (
            columns[1 + (1 if compiled.grouped else 0)]
            if compiled.spec.needs_value else None
        )
        t0 = perf_counter()
        self.aggregate.accumulate(starts, keys, values)
        rows = self.aggregate.close(timestamp)
        bound = (
            self.aggregate.forward(timestamp)
            if timestamp is not None else None
        )
        self.agg_metrics.note_batch(
            starts.size, len(rows), perf_counter() - t0
        )
        if timestamp is not None:
            self.agg_metrics.note_punct(bound is not None)
        self.agg_metrics.peak = max(
            self.agg_metrics.peak, self.aggregate.buffered() + len(rows)
        )
        if self.topk is None:
            self._emit(rows)
            if bound is not None:
                self.punctuations.append(bound)
            return
        t0 = perf_counter()
        for start, key, value in rows:
            self.topk.add(start, key, value)
        if timestamp is None:
            out = self.topk.close(None)
            forwarded = None
        elif bound is not None:
            out = self.topk.close(bound)
            forwarded = self.topk.forward(bound)
        else:
            out = []
            forwarded = None
        self.topk_metrics.note_batch(len(rows), len(out), perf_counter() - t0)
        if bound is not None:
            self.topk_metrics.note_punct(forwarded is not None)
        self.topk_metrics.peak = max(
            self.topk_metrics.peak, self.topk.buffered() + len(out)
        )
        self._emit(out)
        if forwarded is not None:
            self.punctuations.append(forwarded)

    def _emit(self, rows):
        size = self.compiled.window_size
        self.events.extend(
            Event(start, start + size, key, value)
            for start, key, value in rows
        )

    # -- result -----------------------------------------------------------

    def result(self, reason):
        if self.sorter is None:
            # Empty pass-through run: no chunk ever fixed the arity.
            self.sorter = self._make_sorter(3)
        sorter_doc = self.sort_metrics.doc()
        sorter_doc["sorter"] = self.sorter.stats.as_dict()
        late = self.sorter.late
        sorter_doc["late"] = {
            "policy": late.policy.name,
            "dropped": late.dropped,
            "adjusted": late.adjusted,
        }
        if late.dropped:
            sorter_doc["dropped"] = late.dropped
        spill = None
        if self.memory_budget is not None:
            spill = self.sorter.spill_doc()
            sorter_doc["spill"] = spill
        docs = [self.ingress.doc()]
        docs.extend(metrics.doc() for metrics in self.stage_metrics)
        docs.append(sorter_doc)
        docs.append(self.agg_metrics.doc())
        if self.topk_metrics is not None:
            docs.append(self.topk_metrics.doc())
        meta = {
            "engine": "columnar",
            "kernels": self.compiled.describe(),
        }
        if self.memory_budget is not None:
            meta["memory_budget"] = self.memory_budget
        return PlanResult(
            self.events, self.punctuations, True, "columnar",
            reason=reason, operator_docs=docs, meta=meta, spill=spill,
        )

    def close(self):
        if self.memory_budget is not None and self.sorter is not None:
            self.sorter.close()


# ---------------------------------------------------------------------------
# Engine selection: QueryPlan.run's backend.
# ---------------------------------------------------------------------------


def _ingest_reason(events):
    """Why a raw event list cannot be columnarized (``None`` if it can)."""
    if not events:
        return None
    first = events[0]
    if not hasattr(first, "sync_time"):
        return "source elements are not events"
    arity = len(first.payload) if isinstance(first.payload, tuple) else -1
    if arity < 0:
        return "event payloads are not tuples"
    integral = (int, np.integer)
    for event in events:
        if not hasattr(event, "sync_time"):
            return "source elements are not events"
        payload = event.payload
        if not isinstance(payload, tuple) or len(payload) != arity:
            return "event payload arity is not uniform"
        if not isinstance(event.sync_time, integral) \
                or not isinstance(event.other_time, integral) \
                or not isinstance(event.key, integral):
            return "event times/keys are not integers"
        for value in payload:
            if not isinstance(value, integral):
                return "event payloads are not integer columns"
    return None


def _dataset_reason(dataset):
    if not len(dataset.timestamps):
        return None
    integral = (int, np.integer)
    if not isinstance(dataset.timestamps[0], integral):
        return "dataset timestamps are not integers"
    if not isinstance(dataset.keys[0], integral):
        return "dataset keys are not integers"
    payload = dataset.payloads[0]
    if not isinstance(payload, tuple) or not all(
        isinstance(value, integral) for value in payload
    ):
        return "dataset payloads are not integer columns"
    return None


def _normalize_source(source, punctuation_frequency, reorder_latency):
    """Classify the source: ``(kind, payload, frequency, latency, reason)``.

    ``kind`` is ``"dataset"``, ``"events"``, or ``"stream"`` (a
    ``DisorderedStreamable`` that must run on the row path); ``reason``
    forces the row path when not ``None``.
    """
    from repro.engine.disordered import DisorderedStreamable

    if isinstance(source, DisorderedStreamable):
        spec = getattr(source, "_ingress", None)
        if spec is None:
            return (
                "stream", source, None, None,
                "source stream does not expose columnar ingress "
                "(derived or from_elements)",
            )
        kind, payload, frequency, latency = spec
        return kind, payload, frequency, latency, None
    if hasattr(source, "timestamps") and hasattr(source, "payloads"):
        return (
            "dataset", source, punctuation_frequency, reorder_latency, None
        )
    events = source if isinstance(source, list) else list(source)
    return "events", events, punctuation_frequency, reorder_latency, None


def execute_plan(plan, source, punctuation_frequency=None, reorder_latency=0,
                 engine="auto", batch_size=8192, metrics=None,
                 memory_budget=None) -> PlanResult:
    """Run ``plan`` over ``source`` on the requested engine.

    ``engine="auto"`` compiles when possible and falls back to the row
    engine silently (the result's ``reason`` says why);
    ``engine="columnar"`` raises :class:`QueryBuildError` when the plan
    cannot be compiled; ``engine="row"`` always uses the row operators.
    ``memory_budget`` (bytes) bounds the sorter's resident buffer; cold
    sorted runs spill to disk with byte-identical output.
    """
    if engine not in ("auto", "columnar", "row"):
        raise QueryBuildError(
            f"engine must be 'auto', 'columnar', or 'row', not {engine!r}"
        )
    kind, payload, frequency, latency, forced_reason = _normalize_source(
        source, punctuation_frequency, reorder_latency
    )
    reason = None
    compiled = None
    if engine != "row":
        if forced_reason is not None:
            reason = forced_reason
        else:
            try:
                compiled = compile_plan(plan)
            except UnsupportedPlanError as exc:
                reason = exc.reason
            if compiled is not None:
                ingest = (
                    _dataset_reason(payload) if kind == "dataset"
                    else _ingest_reason(payload)
                )
                if ingest is not None:
                    compiled = None
                    reason = ingest
        if compiled is None and engine == "columnar":
            raise QueryBuildError(
                f"engine='columnar' requested but the plan cannot be "
                f"compiled: {reason}"
            )
    else:
        reason = "engine='row' requested"
    if compiled is not None:
        return compiled.run(
            kind, payload, punctuation_frequency=frequency,
            reorder_latency=latency, batch_size=batch_size,
            memory_budget=memory_budget,
        )
    return _run_row(plan, kind, payload, frequency, latency, metrics,
                    reason, memory_budget)


def _budgeted_row_plan(plan, memory_budget, created):
    """Rebuild ``plan`` with its sort step bound to an external sorter.

    ``created`` collects every sorter the factory builds so the caller
    can close them (releasing spill files) on every exit path.
    """
    from repro.engine.planner import QueryPlan, _Step, _sync_time_key
    from repro.sorting.external import ExternalImpatienceSorter

    steps = []
    for step in plan.steps:
        if step.method != "sort":
            steps.append(step)
            continue
        kwargs = dict(step.kwargs)
        if kwargs.get("sorter") is not None:
            raise QueryBuildError(
                "memory_budget requires the default sorter; the plan "
                "carries a custom sorter factory"
            )
        late_policy = kwargs.get("late_policy")

        def factory(_policy=late_policy):
            sorter = ExternalImpatienceSorter(
                memory_budget, key=_sync_time_key,
                late_policy=_policy if _policy is not None
                else LatePolicy.DROP,
            )
            created.append(sorter)
            return sorter

        steps.append(_Step("sort", (), (("sorter", factory),)))
    return QueryPlan(steps)


def _run_row(plan, kind, payload, frequency, latency, metrics, reason,
             memory_budget=None):
    from repro.engine.disordered import DisorderedStreamable

    if kind == "stream":
        stream = payload
    elif kind == "dataset":
        stream = DisorderedStreamable.from_dataset(payload, frequency, latency)
    else:
        stream = DisorderedStreamable.from_events(payload, frequency, latency)
    created = []
    spill = None
    meta = {"engine": "row"}
    if memory_budget is not None:
        plan = _budgeted_row_plan(plan, memory_budget, created)
        meta["memory_budget"] = memory_budget
    try:
        collector = plan.bind(stream).collect(metrics=metrics)
        if created:
            spill = created[0].spill_doc()
    finally:
        for sorter in created:
            sorter.close()
    return PlanResult(
        collector.events, collector.punctuations, collector.completed,
        "row", reason=reason, registry=metrics,
        meta=meta, spill=spill,
    )
