"""Key-sharded query execution (Trill's Map/Reduce pattern).

Trill scales grouped queries by hash-partitioning events across cores
and merging per-shard results.  This module provides the single-process
simulation of that pattern: a :class:`ShardedQuery` routes each ordered
event to one of ``shards`` sub-pipelines by key hash, runs the same
query function in each, and re-merges the shard outputs through a union
cascade so the combined stream is ordered again.

The value at this repository's scale is *state partitioning*: each
shard's operators hold only their keys' state, and the merge tree is the
same synchronized union the Impatience framework uses — so the
equivalence test (sharded == unsharded, any shard count) doubles as a
stress test of union's watermark logic.
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.engine.graph import QueryNode
from repro.engine.operators.base import Operator, PassThrough
from repro.engine.operators.union import Union
from repro.engine.stream import Streamable

__all__ = ["ShardedQuery", "shard_streamable"]


class _KeyShardRouter(Operator):
    """Route events to ``out_ports[hash(key) % shards]``; broadcast
    punctuations and flushes to every shard."""

    def __init__(self, shards, key_fn=None):
        super().__init__()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.key_fn = key_fn
        self.out_ports = [PassThrough() for _ in range(shards)]
        self.routed = [0] * shards

    def _shard(self, event):
        key = event.key if self.key_fn is None else self.key_fn(event)
        return hash(key) % self.shards

    def on_event(self, event):
        index = self._shard(event)
        self.routed[index] += 1
        self.out_ports[index].on_event(event)

    def on_punctuation(self, punctuation):
        for port in self.out_ports:
            port.on_punctuation(punctuation)

    def on_flush(self):
        for port in self.out_ports:
            port.on_flush()


def shard_streamable(stream: Streamable, query_fn, shards,
                     key_fn=None) -> Streamable:
    """Map/Reduce a query: shard by key, apply ``query_fn`` per shard,
    merge the shard outputs back into one ordered stream.

    ``query_fn`` must be key-local (its result for one key must not
    depend on other keys' events) — grouped aggregates, per-key patterns,
    sessions and coalescing all qualify; a global Count does not.
    """
    if shards < 1:
        raise QueryBuildError("shards must be >= 1")
    router_node = QueryNode(
        lambda: _KeyShardRouter(shards, key_fn),
        ((stream.node, None),),
        name=f"shard[{shards}]",
    )
    shard_streams = [
        Streamable(
            QueryNode(PassThrough, ((router_node, index),),
                      name=f"shard-{index}"),
            stream.source,
        ).apply(query_fn)
        for index in range(shards)
    ]
    merged = shard_streams[0]
    for other in shard_streams[1:]:
        node = QueryNode(
            Union, ((merged.node, None), (other.node, None)), name="merge"
        )
        merged = Streamable(node, stream.source)
    return merged


class ShardedQuery:
    """Convenience wrapper binding a query function to a shard count.

    >>> sharded = ShardedQuery(lambda s: s.group_aggregate(Count()), 4)
    >>> result = sharded.over(ordered_stream).collect()
    """

    def __init__(self, query_fn, shards, key_fn=None):
        self.query_fn = query_fn
        self.shards = shards
        self.key_fn = key_fn

    def over(self, stream: Streamable) -> Streamable:
        """Build the sharded plan over an ordered stream."""
        return shard_streamable(
            stream, self.query_fn, self.shards, self.key_fn
        )
