"""Key-sharded query execution (Trill's Map/Reduce pattern).

Trill scales grouped queries by hash-partitioning events across cores
and merging per-shard results.  This module provides the single-process
simulation of that pattern: a :class:`ShardedQuery` routes each ordered
event to one of ``shards`` sub-pipelines by key hash, runs the same
query function in each, and re-merges the shard outputs through a
*balanced* union tree (depth ``ceil(log2 N)``) so the combined stream is
ordered again.  :func:`shard_disordered` is the disordered-ingress
variant: raw events are routed first and each shard carries its own
sorting stage, which is exactly the per-worker pipeline the
multi-process runtime in :mod:`repro.parallel` executes.

Routing uses :func:`stable_key_hash`, a process- and run-stable hash
(builtin ``hash`` is salted per process for strings via
``PYTHONHASHSEED``, so it could never be shared between a coordinator
and its workers).  :func:`stable_key_hash_array` is the vectorized
equivalent the columnar router uses; the two are bit-identical on
integer keys.

The value at this repository's scale is *state partitioning*: each
shard's operators hold only their keys' state, and the merge tree is the
same synchronized union the Impatience framework uses — so the
equivalence test (sharded == unsharded, any shard count) doubles as a
stress test of union's watermark logic.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.errors import QueryBuildError
from repro.engine.graph import QueryNode
from repro.engine.operators.base import Operator, PassThrough
from repro.engine.operators.sort import Sort
from repro.engine.operators.union import Union
from repro.engine.stream import Streamable

__all__ = [
    "ShardedQuery",
    "shard_streamable",
    "shard_disordered",
    "stable_key_hash",
    "stable_key_hash_array",
    "balanced_merge",
]

_MASK64 = (1 << 64) - 1
# splitmix64 finalizer constants (Steele et al.) — a full-avalanche
# integer mixer with a branch-free numpy translation.
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX_C1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_C2) & _MASK64
    x ^= x >> 31
    return x


def stable_key_hash(key) -> int:
    """A 64-bit key hash that is identical across processes and runs.

    Integers (the engine's native key type) go through the splitmix64
    finalizer; strings, bytes, and arbitrary objects hash the CRC-32 of
    their canonical byte form, re-mixed for diffusion in the low bits
    that ``% shards`` consumes.  Unlike builtin ``hash``, the result
    never depends on ``PYTHONHASHSEED`` — a requirement for the
    multi-process shard runtime, where the coordinator and every worker
    must agree on the routing of every key.
    """
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return _mix64(int(key))
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8", "surrogatepass")
    else:
        data = repr(key).encode("utf-8", "backslashreplace")
    return _mix64(zlib.crc32(data))


def stable_key_hash_array(keys) -> np.ndarray:
    """Vectorized :func:`stable_key_hash` for integer key arrays.

    Bit-identical to the scalar integer branch (two's-complement fold of
    negatives included), so the columnar router and the per-event router
    always agree.  Returns a ``uint64`` array.
    """
    x = np.asarray(keys).astype(np.uint64)  # astype always copies: safe
    x ^= x >> np.uint64(30)                 # to mix the rest in place
    x *= np.uint64(_MIX_C1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_C2)
    x ^= x >> np.uint64(31)
    return x


class _KeyShardRouter(Operator):
    """Route events to ``out_ports[stable_key_hash(key) % shards]``;
    broadcast punctuations and flushes to every shard."""

    def __init__(self, shards, key_fn=None):
        super().__init__()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.key_fn = key_fn
        self.out_ports = [PassThrough() for _ in range(shards)]
        self.routed = [0] * shards

    def _shard(self, event):
        key = event.key if self.key_fn is None else self.key_fn(event)
        return stable_key_hash(key) % self.shards

    def on_event(self, event):
        index = self._shard(event)
        self.routed[index] += 1
        self.out_ports[index].on_event(event)

    def on_punctuation(self, punctuation):
        for port in self.out_ports:
            port.on_punctuation(punctuation)

    def on_flush(self):
        for port in self.out_ports:
            port.on_flush()


def balanced_merge(items, combine):
    """Reduce ``items`` through a balanced binary tree of ``combine``.

    Pairs adjacent items in rounds (an odd leftover is carried to the
    next round), so the tree has depth ``ceil(log2 N)`` instead of the
    ``N - 1`` a left-fold would produce.  Both the single-process union
    cascade and the parallel coordinator's watermark simulator build
    their trees through this one function, which is what makes their
    punctuation sequences byte-identical.
    """
    items = list(items)
    if not items:
        raise ValueError("balanced_merge requires at least one item")
    while len(items) > 1:
        merged = [
            combine(items[i], items[i + 1])
            for i in range(0, len(items) - 1, 2)
        ]
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


def _union_tree(shard_streams, source) -> Streamable:
    def combine(left, right):
        node = QueryNode(
            Union, ((left.node, None), (right.node, None)), name="merge"
        )
        return Streamable(node, source)

    return balanced_merge(shard_streams, combine)


def shard_streamable(stream: Streamable, query_fn, shards,
                     key_fn=None) -> Streamable:
    """Map/Reduce a query: shard by key, apply ``query_fn`` per shard,
    merge the shard outputs back into one ordered stream.

    ``query_fn`` must be key-local (its result for one key must not
    depend on other keys' events) — grouped aggregates, per-key patterns,
    sessions and coalescing all qualify; a global Count does not.
    """
    if shards < 1:
        raise QueryBuildError("shards must be >= 1")
    router_node = QueryNode(
        lambda: _KeyShardRouter(shards, key_fn),
        ((stream.node, None),),
        name=f"shard[{shards}]",
    )
    shard_streams = [
        Streamable(
            QueryNode(PassThrough, ((router_node, index),),
                      name=f"shard-{index}"),
            stream.source,
        ).apply(query_fn)
        for index in range(shards)
    ]
    return _union_tree(shard_streams, stream.source)


def shard_disordered(stream, query_fn, shards, key_fn=None,
                     sorter=None) -> Streamable:
    """Shard a *disordered* stream with a per-shard sorting stage.

    Events are routed raw (routing is order-insensitive), each shard
    sorts its own substream — ``sorter`` is an optional online-sorter
    factory, as in
    :meth:`~repro.engine.disordered.DisorderedStreamable.to_streamable`
    — then applies ``query_fn`` to the ordered result, and the shard
    outputs merge through the balanced union tree.  This is the
    single-process reference plan for the multi-process runtime in
    :mod:`repro.parallel`: worker ``i`` executes exactly the
    ``sort → query_fn`` pipeline that shard ``i`` runs here.
    """
    if shards < 1:
        raise QueryBuildError("shards must be >= 1")
    if sorter is not None and not callable(sorter):
        raise QueryBuildError("sorter must be a zero-argument factory")
    router_node = QueryNode(
        lambda: _KeyShardRouter(shards, key_fn),
        ((stream.node, None),),
        name=f"shard[{shards}]",
    )
    sort_factory = Sort if sorter is None else (lambda: Sort(sorter()))
    shard_streams = []
    for index in range(shards):
        port_node = QueryNode(
            PassThrough, ((router_node, index),), name=f"shard-{index}"
        )
        sort_node = QueryNode(
            sort_factory, ((port_node, None),), name=f"sort-{index}"
        )
        shard_streams.append(
            Streamable(sort_node, stream.source).apply(query_fn)
        )
    return _union_tree(shard_streams, stream.source)


class ShardedQuery:
    """Convenience wrapper binding a query function to a shard count.

    >>> sharded = ShardedQuery(lambda s: s.group_aggregate(Count()), 4)
    >>> result = sharded.over(ordered_stream).collect()
    """

    def __init__(self, query_fn, shards, key_fn=None):
        self.query_fn = query_fn
        self.shards = shards
        self.key_fn = key_fn

    def over(self, stream: Streamable) -> Streamable:
        """Build the sharded plan over an ordered stream."""
        return shard_streamable(
            stream, self.query_fn, self.shards, self.key_fn
        )
