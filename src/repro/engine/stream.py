"""The ``Streamable`` fluent query API (Section IV-B).

A :class:`Streamable` represents an *ordered* stream: every operator is
available, including the order-sensitive windowed aggregates, union, and
pattern matching.  Its disordered counterpart lives in
:mod:`repro.engine.disordered` and exposes only order-insensitive
operators, enforcing the paper's sort-as-needed typing discipline at the
API level.

Instances are immutable: each operator method returns a new Streamable
sharing the upstream query DAG, so diamond plans (framework fan-outs)
deduplicate naturally at materialization.
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.operators.aggregates import (
    Count,
    GroupedWindowAggregate,
    WindowAggregate,
    WindowTopK,
)
from repro.engine.operators.coalesce import Coalesce
from repro.engine.operators.distinct import DistinctWindow
from repro.engine.operators.duration import (
    AlterEventDuration,
    ClipEventDuration,
)
from repro.engine.operators.session import SessionWindow
from repro.engine.operators.snapshot import SnapshotAggregate
from repro.engine.operators.groupapply import GroupApply
from repro.engine.operators.join import TemporalJoin
from repro.engine.operators.monitor import OrderingMonitor
from repro.engine.operators.pattern import PatternMatch
from repro.engine.operators.select import Select, SelectColumns, SelectEvent
from repro.engine.operators.sink import CallbackSink, Collector
from repro.engine.operators.union import Union
from repro.engine.operators.where import Where
from repro.engine.operators.window import HoppingWindow, TumblingWindow

__all__ = ["Streamable"]


class Streamable:
    """An ordered stream node in a query DAG.

    Build one with :meth:`from_elements` (or via
    ``DisorderedStreamable.to_streamable``), chain operators, then
    ``collect()`` / ``subscribe()`` to execute.
    """

    def __init__(self, node, source):
        self._node = node
        self._source = source

    # -- construction -----------------------------------------------------

    @classmethod
    def from_elements(cls, elements, name="source"):
        """An ordered stream from an iterable of events + punctuations.

        The caller asserts the elements are already sync_time-ordered; use
        ``DisorderedStreamable`` when they are not.
        """
        return cls(source_node(name), _SourceHandle(elements))

    @property
    def node(self) -> QueryNode:
        """The underlying query-DAG node (for framework plumbing)."""
        return self._node

    @property
    def source(self):
        """The shared source handle (for framework plumbing)."""
        return self._source

    def _derive(self, factory, name, out_port=None):
        node = QueryNode(factory, ((self._node, out_port),), name=name)
        return Streamable(node, self._source)

    # -- order-insensitive operators ---------------------------------------

    def where(self, predicate) -> "Streamable":
        """Filter events by a predicate (selection)."""
        return self._derive(lambda: Where(predicate), "where")

    def select(self, projector) -> "Streamable":
        """Map payloads through ``projector`` (projection)."""
        return self._derive(lambda: Select(projector), "select")

    def select_columns(self, columns) -> "Streamable":
        """Keep only the given payload field indices."""
        return self._derive(lambda: SelectColumns(columns), "select_columns")

    def select_event(self, mapper) -> "Streamable":
        """Map whole events (advanced; must preserve sync order)."""
        return self._derive(lambda: SelectEvent(mapper), "select_event")

    def monitor(self, label="monitor", scan_order=True) -> "Streamable":
        """Insert a stream-contract assertion layer (debug/test aid)."""
        return self._derive(
            lambda: OrderingMonitor(label, scan_order), "monitor"
        )

    def tumbling_window(self, size) -> "Streamable":
        """Align timestamps to fixed non-overlapping windows."""
        return self._derive(lambda: TumblingWindow(size), "tumbling_window")

    def hopping_window(self, size, hop) -> "Streamable":
        """Align timestamps to sliding windows of ``size`` every ``hop``."""
        return self._derive(lambda: HoppingWindow(size, hop), "hopping_window")

    def alter_duration(self, duration) -> "Streamable":
        """Set every event's lifetime to a fixed length."""
        return self._derive(
            lambda: AlterEventDuration(duration), "alter_duration"
        )

    def clip_duration(self, limit) -> "Streamable":
        """Cap every event's lifetime at ``limit``."""
        return self._derive(lambda: ClipEventDuration(limit), "clip_duration")

    # -- order-sensitive operators ------------------------------------------

    def aggregate(self, aggregate) -> "Streamable":
        """One result event per window (requires a window operator first)."""
        return self._derive(lambda: WindowAggregate(aggregate), "aggregate")

    def count(self) -> "Streamable":
        """Events per window — the paper's running example query."""
        return self.aggregate(Count())

    def group_aggregate(self, aggregate, key_fn=None) -> "Streamable":
        """One result event per (window, group); groups by event key."""
        return self._derive(
            lambda: GroupedWindowAggregate(aggregate, key_fn), "group_aggregate"
        )

    def top_k(self, k, score_fn=None) -> "Streamable":
        """Top-k events per window by score (descending)."""
        return self._derive(lambda: WindowTopK(k, score_fn), "top_k")

    def pattern_match(self, first, second, within, key_fn=None) -> "Streamable":
        """Detect ``first`` then ``second`` within a time bound, per key."""
        return self._derive(
            lambda: PatternMatch(first, second, within, key_fn), "pattern_match"
        )

    def coalesce(self, combine=None, key_fn=None) -> "Streamable":
        """Fuse same-key events with overlapping lifetimes (§V-C)."""
        return self._derive(lambda: Coalesce(combine, key_fn), "coalesce")

    def session_window(self, timeout, aggregate=None,
                       key_fn=None) -> "Streamable":
        """Group per-key events into gap-delimited sessions."""
        return self._derive(
            lambda: SessionWindow(timeout, aggregate, key_fn),
            "session_window",
        )

    def distinct(self, selector=None) -> "Streamable":
        """Keep the first event per (window, selector value)."""
        return self._derive(lambda: DistinctWindow(selector), "distinct")

    def snapshot_aggregate(self, lift=None, emit_zero=False) -> "Streamable":
        """Step-function aggregate over event validity intervals
        (Trill snapshot semantics; use after a hopping window for true
        sliding-window results)."""
        return self._derive(
            lambda: SnapshotAggregate(lift, emit_zero), "snapshot_aggregate"
        )

    def group_apply(self, query_fn, key_fn=None) -> "Streamable":
        """Run a sub-query per grouping key (Trill's GroupApply)."""
        return self._derive(
            lambda: GroupApply(query_fn, key_fn), "group_apply"
        )

    def join(self, other: "Streamable", result_selector=None) -> "Streamable":
        """Temporal equi-join with another ordered stream.

        Events match when keys are equal and validity intervals overlap;
        both streams must share one source (as with :meth:`union`).
        """
        if other._source is not self._source:
            raise QueryBuildError(
                "join requires both streams to share one source"
            )
        node = QueryNode(
            lambda: TemporalJoin(result_selector),
            ((self._node, None), (other._node, None)),
            name="join",
        )
        return Streamable(node, self._source)

    def self_join(self, result_selector=None) -> "Streamable":
        """Temporal equi-join of the stream with itself.

        The single-stream join shape expressible in a ``QueryPlan``
        (both ports share the source by construction); every pair of
        same-key events with overlapping intervals matches, including
        each event with itself.
        """
        return self.join(self, result_selector)

    def union(self, other: "Streamable") -> "Streamable":
        """Synchronized sorted merge with another ordered stream.

        Both streams must descend from the same source (single-driver
        execution model); the framework's multi-latency plans satisfy this
        by construction.
        """
        if other._source is not self._source:
            raise QueryBuildError(
                "union requires both streams to share one source"
            )
        node = QueryNode(
            Union, ((self._node, None), (other._node, None)), name="union"
        )
        return Streamable(node, self._source)

    def apply(self, query_fn) -> "Streamable":
        """Apply a user query function ``Streamable -> Streamable``.

        This is how PIQ and merge lambdas compose in the Impatience
        framework (Section V-C); a ``None`` function is the pass-through.
        """
        if query_fn is None:
            return self
        result = query_fn(self)
        if not isinstance(result, Streamable):
            raise QueryBuildError(
                "query function must return a Streamable, got "
                f"{type(result).__name__}"
            )
        return result

    # -- execution ----------------------------------------------------------

    def subscribe(self, on_event_fn, on_punctuation_fn=None,
                  on_flush_fn=None):
        """Attach a callback sink; returns the pipeline (not yet driven)."""
        sink_node = QueryNode(
            lambda: CallbackSink(on_event_fn, on_punctuation_fn, on_flush_fn),
            ((self._node, None),),
            name="subscribe",
        )
        return Pipeline([sink_node])

    def collect(self, on_punctuation=None, metrics=None) -> Collector:
        """Execute the query over its source and return the collector.

        ``metrics`` is an optional
        :class:`~repro.observability.MetricsRegistry`; it is attached to
        the materialized pipeline before any element flows, so its
        snapshot covers the whole run.
        """
        sink_node = QueryNode(Collector, ((self._node, None),), name="collect")
        pipeline = Pipeline([sink_node])
        if metrics is not None:
            metrics.attach(pipeline)
        pipeline.run(self._source.elements(), on_punctuation=on_punctuation)
        return pipeline.operator_for(sink_node)


class _SourceHandle:
    """Identity token + element provider shared by a query DAG's streams."""

    __slots__ = ("_elements", "_consumed")

    def __init__(self, elements):
        self._elements = elements
        self._consumed = False

    def elements(self):
        """Hand out the element iterable (single-shot for iterators)."""
        if self._consumed and not hasattr(self._elements, "__getitem__"):
            raise QueryBuildError(
                "source iterator already consumed; materialize it as a list "
                "to run multiple queries"
            )
        self._consumed = True
        return self._elements
