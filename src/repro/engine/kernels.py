"""Numpy kernel library shared by the columnar compiler and shard plans.

Trill's performance story (§I-A) is that *every* relational operator runs
as a tight loop over columnar batches; our reproduction grew vectorized
fragments twice (the ad-hoc ``ColumnarPipeline``, the parallel runtime's
grouped count/sum executor) without a shared substrate.  This module is
that substrate:

* a **structured expression DSL** (:func:`field`, :func:`key_field`,
  :func:`sync_field`) whose predicates and selectors are *both* plain
  callables — so the row engine's ``Where``/``Sum`` consume them
  unchanged — and vectorizable column programs the compiler lowers onto
  whole numpy arrays.  A query written against the DSL is eligible for
  the fused columnar path; a query written with opaque lambdas falls
  back to the row engine (the compiler cannot introspect Python code).
* an **aggregate spec table** (:data:`AGGREGATE_SPECS`) mapping
  ``count``/``sum``/``avg``/``min``/``max`` onto ``reduceat`` folds with
  explicit partial-state merge and finalization, replicating the row
  aggregates' fold interface (``initial``/``accumulate``/``result``)
  batch-wise.
* the **windowed kernel state machines**
  (:class:`GroupedWindowKernel`, :class:`WindowTopKKernel`) that
  replicate ``TumblingWindow -> (Grouped)WindowAggregate [-> WindowTopK]``
  byte-for-byte: the window-close rule (``end - 1 <= T``), the clamped
  forwarded punctuation (``min(T, min(open) - 1)``, suppressed unless it
  advances), emission in ascending (window, key) order, and the
  ADJUST-policy subtlety that a late event may re-open an
  already-emitted window.

Both the single-process compiler (:mod:`repro.engine.compiler`) and the
parallel shard plans (:mod:`repro.parallel.plans`) build on these
kernels, so an aggregate added here is inherited by every vectorized
path at once.
"""

from __future__ import annotations

import heapq
import operator as _op
from collections import deque

import numpy as np

from repro.engine.event import Event

__all__ = [
    "Expr",
    "Predicate",
    "field",
    "key_field",
    "sync_field",
    "key_str_eq",
    "key_str_prefix",
    "field_str_eq",
    "field_str_prefix",
    "AggregateSpec",
    "AGGREGATE_SPECS",
    "GroupedWindowKernel",
    "WindowTopKKernel",
    "TerminalKernel",
    "DistinctKernel",
    "SessionKernel",
    "CoalesceKernel",
    "SelfJoinKernel",
    "PatternKernel",
    "GroupApplyKernel",
    "RawTopKKernel",
]

_NEG_INF = float("-inf")


# ---------------------------------------------------------------------------
# Structured expressions: one object, two evaluators.
# ---------------------------------------------------------------------------

_ARITH = {
    "%": _op.mod,
    "//": _op.floordiv,
    "+": _op.add,
    "-": _op.sub,
    "*": _op.mul,
}

_COMPARE = {
    "==": _op.eq,
    "!=": _op.ne,
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
}


def _wrap(value):
    if isinstance(value, Expr):
        return value
    if isinstance(value, (str, bytes)):
        raise TypeError(
            f"string constant {value!r} cannot appear directly in an "
            f"expression: the columnar engines compare int64 dictionary "
            f"codes, not bytes.  Encode the query side with a "
            f"StringDictionary and use key_str_eq / key_str_prefix / "
            f"field_str_eq / field_str_prefix (repro.engine.kernels)."
        )
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"expression operands must be int constants or expressions, "
            f"got {value!r}"
        )
    return _Const(value)


class Expr:
    """A structured scalar expression over one event.

    The row engine evaluates it per event (``_scalar``); the columnar
    compiler evaluates it once per batch over whole columns
    (``_vector``).  Arithmetic with int constants builds derived
    expressions; comparisons build :class:`Predicate` objects.
    """

    __hash__ = object.__hash__

    def _scalar(self, event):
        raise NotImplementedError

    def _vector(self, sync, keys, payload):
        raise NotImplementedError

    # -- arithmetic ------------------------------------------------------

    def __mod__(self, other):
        return _BinOp("%", self, _wrap(other))

    def __floordiv__(self, other):
        return _BinOp("//", self, _wrap(other))

    def __add__(self, other):
        return _BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return _BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return _BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return _BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return _BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return _BinOp("*", _wrap(other), self)

    # -- comparisons -> predicates --------------------------------------

    def __eq__(self, other):
        return _Compare("==", self, _wrap(other))

    def __ne__(self, other):
        return _Compare("!=", self, _wrap(other))

    def __lt__(self, other):
        return _Compare("<", self, _wrap(other))

    def __le__(self, other):
        return _Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return _Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return _Compare(">=", self, _wrap(other))


class _Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _scalar(self, event):
        return self.value

    def _vector(self, sync, keys, payload):
        return self.value

    def __repr__(self):
        return repr(self.value)


class _PayloadField(Expr):
    """Payload column reference; also a row-engine payload *selector*."""

    __slots__ = ("index",)

    def __init__(self, index):
        if index < 0:
            raise ValueError("payload field index must be >= 0")
        self.index = index

    def __call__(self, payload):
        # Aggregate-selector protocol: ``Sum(field(i))`` on the row path.
        return payload[self.index]

    def _scalar(self, event):
        return event.payload[self.index]

    def _vector(self, sync, keys, payload):
        return payload[self.index]

    def __repr__(self):
        return f"field({self.index})"


class _KeyField(Expr):
    """Grouping-key reference; also a row-engine ``key_fn``."""

    __slots__ = ()

    def __call__(self, event):
        return event.key

    def _scalar(self, event):
        return event.key

    def _vector(self, sync, keys, payload):
        return keys

    def __repr__(self):
        return "key()"


class _SyncField(Expr):
    __slots__ = ()

    def __call__(self, event):
        return event.sync_time

    def _scalar(self, event):
        return event.sync_time

    def _vector(self, sync, keys, payload):
        return sync

    def __repr__(self):
        return "sync()"


class _BinOp(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        return _ARITH[self.op](self.lhs._scalar(event), self.rhs._scalar(event))

    def _vector(self, sync, keys, payload):
        return _ARITH[self.op](
            self.lhs._vector(sync, keys, payload),
            self.rhs._vector(sync, keys, payload),
        )

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Predicate:
    """A boolean expression; callable on an event, maskable on columns.

    The row engine's ``Where`` calls it per event; the compiler calls
    :meth:`mask` once per batch.  Combine with ``&``, ``|``, ``~``.
    """

    __hash__ = object.__hash__

    def __call__(self, event):
        return bool(self._scalar(event))

    def _scalar(self, event):
        raise NotImplementedError

    def _vector(self, sync, keys, payload):
        raise NotImplementedError

    def mask(self, sync, keys, payload):
        """Vectorized evaluation -> boolean selection bitmap."""
        return np.asarray(
            self._vector(sync, keys, payload), dtype=bool
        )

    def __and__(self, other):
        return _BoolOp("&", self, other)

    def __or__(self, other):
        return _BoolOp("|", self, other)

    def __invert__(self):
        return _Not(self)


class _Compare(Predicate):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        return _COMPARE[self.op](
            self.lhs._scalar(event), self.rhs._scalar(event)
        )

    def _vector(self, sync, keys, payload):
        return _COMPARE[self.op](
            self.lhs._vector(sync, keys, payload),
            self.rhs._vector(sync, keys, payload),
        )

    def __repr__(self):
        return f"{self.lhs!r} {self.op} {self.rhs!r}"


class _BoolOp(Predicate):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        if not isinstance(lhs, Predicate) or not isinstance(rhs, Predicate):
            raise TypeError("&/| combine predicates, not raw expressions")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        left = self.lhs._scalar(event)
        right = self.rhs._scalar(event)
        return (left and right) if self.op == "&" else (left or right)

    def _vector(self, sync, keys, payload):
        left = self.lhs.mask(sync, keys, payload)
        right = self.rhs.mask(sync, keys, payload)
        return (left & right) if self.op == "&" else (left | right)

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class _Not(Predicate):
    __slots__ = ("inner",)

    def __init__(self, inner):
        if not isinstance(inner, Predicate):
            raise TypeError("~ inverts a predicate, not a raw expression")
        self.inner = inner

    def _scalar(self, event):
        return not self.inner._scalar(event)

    def _vector(self, sync, keys, payload):
        return ~self.inner.mask(sync, keys, payload)

    def __repr__(self):
        return f"~({self.inner!r})"


def field(index) -> _PayloadField:
    """Reference payload column ``index`` (predicate term or selector)."""
    return _PayloadField(index)


def key_field() -> _KeyField:
    """Reference the event key (predicate term or grouping ``key_fn``)."""
    return _KeyField()


def sync_field() -> _SyncField:
    """Reference the event sync time (predicate term)."""
    return _SyncField()


# -- string predicates: lowered to dictionary-code comparisons ----------
#
# Order-preserving dictionary encoding (repro.core.strings) maps string
# equality to ONE int comparison and string prefix match to ONE code
# range test, so string where-clauses compile to the same fused int64
# masks as any other predicate — no per-row byte comparisons, and the
# row/compiled equivalence proof carries over unchanged.

def key_str_eq(dictionary, value) -> Predicate:
    """``key() == code(value)`` — string equality on a dictionary-coded
    key.  A value absent from the dictionary lowers to code ``-1``,
    which no row carries: the predicate matches nothing (no error)."""
    return key_field() == int(dictionary.code(value))


def key_str_prefix(dictionary, prefix) -> Predicate:
    """Prefix match on a dictionary-coded key as one code-range test.

    Order preservation turns ``startswith(prefix)`` into membership in
    the contiguous code range ``[lo, hi)``; an empty range (no value has
    the prefix) yields an always-false predicate for free."""
    lo, hi = dictionary.prefix_range(prefix)
    return (key_field() >= int(lo)) & (key_field() < int(hi))


def field_str_eq(index, dictionary, value) -> Predicate:
    """``field(index) == code(value)`` for dictionary-coded payloads."""
    return field(index) == int(dictionary.code(value))


def field_str_prefix(index, dictionary, prefix) -> Predicate:
    """Prefix match on a dictionary-coded payload column."""
    lo, hi = dictionary.prefix_range(prefix)
    return (field(index) >= int(lo)) & (field(index) < int(hi))


# ---------------------------------------------------------------------------
# Aggregate specs: vectorized folds with mergeable partial states.
# ---------------------------------------------------------------------------


class AggregateSpec:
    """One windowed aggregate as a batch fold.

    ``fold`` turns one lexsorted released batch into per-group partial
    states (``group_idx`` are the run starts, ``sizes`` the run
    lengths); ``merge`` combines partials for a group that spans
    multiple punctuation rounds; ``result`` finalizes the state into the
    output payload, matching the row aggregate's ``result`` exactly
    (ints for count/sum/min/max, a Python float for avg).
    """

    name = None
    needs_value = False

    def fold(self, values, group_idx, sizes):
        raise NotImplementedError

    def merge(self, state, partial):
        raise NotImplementedError

    def result(self, state):
        return state


class _CountSpec(AggregateSpec):
    name = "count"
    needs_value = False

    def fold(self, values, group_idx, sizes):
        return sizes.tolist()

    def merge(self, state, partial):
        return state + partial


class _SumSpec(AggregateSpec):
    name = "sum"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.add.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return state + partial


class _MinSpec(AggregateSpec):
    name = "min"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.minimum.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return partial if partial < state else state


class _MaxSpec(AggregateSpec):
    name = "max"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.maximum.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return partial if partial > state else state


class _AvgSpec(AggregateSpec):
    name = "avg"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        totals = np.add.reduceat(values, group_idx)
        return list(zip(totals.tolist(), sizes.tolist()))

    def merge(self, state, partial):
        return (state[0] + partial[0], state[1] + partial[1])

    def result(self, state):
        total, count = state
        return total / count if count else None


#: Vectorizable aggregates by name, shared by the compiler and the
#: parallel ``GroupedAggregatePlan``.
AGGREGATE_SPECS = {
    spec.name: spec
    for spec in (_CountSpec(), _SumSpec(), _MinSpec(), _MaxSpec(), _AvgSpec())
}


# ---------------------------------------------------------------------------
# Windowed kernel state machines.
# ---------------------------------------------------------------------------


class _WindowedKernelBase:
    """Shared close/forward discipline of ``_WindowedBase`` on kernels.

    A window ``[start, start + window)`` closes when
    ``start + window - 1 <= T``; the forwarded punctuation is clamped
    below the earliest still-open window and suppressed unless it
    advances the output watermark.
    """

    def __init__(self, window):
        if window < 1:
            raise ValueError("window size must be >= 1")
        self.window = window
        self.windows = {}
        self.out_watermark = _NEG_INF

    def _due(self, up_to):
        window = self.window
        return sorted(
            start for start in self.windows
            if up_to is None or start + window - 1 <= up_to
        )

    def forward(self, bound):
        """Clamped output punctuation for input promise ``bound``.

        Returns the timestamp to forward downstream, or ``None`` when
        the promise would not advance the output watermark (the row
        operators' suppression rule).
        """
        if self.windows:
            bound = min(bound, min(self.windows) - 1)
        if bound > self.out_watermark:
            self.out_watermark = bound
            return bound
        return None


class GroupedWindowKernel(_WindowedKernelBase):
    """Vectorized ``(Grouped)WindowAggregate`` over window-aligned rows.

    ``accumulate`` folds one released batch (``starts`` already floored
    to window starts) into per-``(start, key)`` partial states via one
    lexsort + ``reduceat``; ``close`` pops due windows and emits
    ``(start, key, result)`` rows ascending by start then key — exactly
    the row operators' emission order.  With ``grouped=False`` (or
    ``keys=None``) every row folds into group key ``0``, replicating the
    ungrouped ``WindowAggregate``.
    """

    def __init__(self, window, spec, grouped=True):
        super().__init__(window)
        self.spec = spec
        self.grouped = grouped

    def accumulate(self, starts, keys=None, values=None):
        if starts.size == 0:
            return
        if not self.grouped or keys is None:
            order = np.argsort(starts, kind="stable")
            starts = starts[order]
            keys = None
            change = np.diff(starts) != 0
        else:
            order = np.lexsort((keys, starts))
            starts = starts[order]
            keys = keys[order]
            change = (np.diff(starts) != 0) | (np.diff(keys) != 0)
        boundaries = np.flatnonzero(change) + 1
        group_idx = np.concatenate(([0], boundaries))
        sizes = np.diff(np.append(group_idx, starts.size))
        vals = values[order] if values is not None else None
        partials = self.spec.fold(vals, group_idx, sizes)
        start_list = starts[group_idx].tolist()
        if keys is None:
            key_list = [0] * len(start_list)
        else:
            key_list = keys[group_idx].tolist()
        merge = self.spec.merge
        windows = self.windows
        for start, key, partial in zip(start_list, key_list, partials):
            groups = windows.get(start)
            if groups is None:
                groups = windows[start] = {}
            if key in groups:
                groups[key] = merge(groups[key], partial)
            else:
                groups[key] = partial

    def close(self, up_to):
        """Pop windows due at ``up_to`` (all when ``None``) and return
        ``(start, key, result)`` rows in emission order."""
        if not self.windows:
            return []
        rows = []
        result = self.spec.result
        for start in self._due(up_to):
            groups = self.windows.pop(start)
            for key in sorted(groups):
                rows.append((start, key, result(groups[key])))
        return rows

    def buffered(self) -> int:
        return sum(len(groups) for groups in self.windows.values())


class WindowTopKKernel(_WindowedKernelBase):
    """Replicates ``WindowTopK`` over ``(start, key, value)`` rows.

    Consumes the grouped kernel's closed rows (arriving in ascending key
    order per window, which fixes tie resolution identically to the row
    operator's stable sort) and keeps a running top-k selection per
    window with the same ``4k`` trim rule.
    """

    def __init__(self, window, k):
        super().__init__(window)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def add(self, start, key, value):
        rows = self.windows.get(start)
        if rows is None:
            rows = self.windows[start] = []
        rows.append((key, value))
        if len(rows) > 4 * self.k:
            rows.sort(key=_row_value, reverse=True)
            del rows[self.k:]

    def close(self, up_to):
        """Pop due windows; return their top-k ``(start, key, value)``
        rows, score-descending with ties in insertion (key) order."""
        if not self.windows:
            return []
        out = []
        for start in self._due(up_to):
            rows = self.windows.pop(start)
            rows.sort(key=_row_value, reverse=True)
            out.extend(
                (start, key, value) for key, value in rows[: self.k]
            )
        return out

    def buffered(self) -> int:
        return sum(len(rows) for rows in self.windows.values())


def _row_value(row):
    return row[1]


# ---------------------------------------------------------------------------
# Pass-through terminal kernels.
#
# Each replicates one row operator byte-for-byte over the columnar
# sorter's released rounds.  The compiler carries the *full* column
# layout to these terminals — ``(sync, other, key, payload columns…)``
# all int64, with the sorter's (possibly ADJUST-rewritten) sort values
# kept separate — so the terminal sees exactly the event fields the row
# operator would, in exactly the order the row sorter would emit them
# (the sorters share one total tie order: effective key, arrival).
# ---------------------------------------------------------------------------


def _rows(sync, other, keys, cols):
    """Per-row python scalars for a released round (zip of .tolist())."""
    payloads = (
        list(zip(*(col.tolist() for col in cols))) if cols
        else [()] * sync.size
    )
    return zip(sync.tolist(), other.tolist(), keys.tolist(), payloads)


class TerminalKernel:
    """A post-sort terminal consuming released rounds.

    ``ingest`` scans one released round's rows in emission order and
    returns immediately-emitted events; ``punctuate``/``flush`` advance
    operator state and return ``(events, punctuations)`` — the exact
    elements (and order) the row operator would emit for the same
    punctuation or flush signal.
    """

    name = None

    def ingest(self, sync, other, keys, cols):
        raise NotImplementedError

    def punctuate(self, timestamp):
        return [], []

    def flush(self):
        return [], []

    def buffered(self) -> int:
        return 0

    def describe(self):
        return self.name


class DistinctKernel(TerminalKernel):
    """``DistinctWindow``: first event per (window start, selector value).

    Candidate first-occurrences within a round come from one
    ``np.unique`` over the stacked ``(start, value…)`` rows; the
    persistent per-start seen-sets then decide which candidates survive
    across rounds.  Emission order is row-scan order (the sorted round),
    matching the row operator exactly.
    """

    name = "distinct"

    def __init__(self, selector_index=None):
        self.selector_index = selector_index
        self._seen = {}  # start -> (end, set of values)

    def ingest(self, sync, other, keys, cols):
        if sync.size == 0:
            return []
        if self.selector_index is None:
            value_cols = cols
        else:
            value_cols = (cols[self.selector_index],)
        if value_cols:
            stacked = np.column_stack((sync, *value_cols))
        else:
            stacked = sync.reshape(-1, 1)
        _, first_idx = np.unique(stacked, axis=0, return_index=True)
        first_idx.sort()
        out = []
        seen = self._seen
        for i in first_idx.tolist():
            start = int(sync[i])
            entry = seen.get(start)
            if entry is None:
                entry = seen[start] = (int(other[i]), set())
            if self.selector_index is None:
                value = tuple(int(col[i]) for col in cols)
            else:
                value = int(cols[self.selector_index][i])
            if value not in entry[1]:
                entry[1].add(value)
                out.append(Event(
                    start, int(other[i]), int(keys[i]),
                    tuple(int(col[i]) for col in cols),
                ))
        return out

    def punctuate(self, timestamp):
        seen = self._seen
        dead = [
            start for start, (end, _) in seen.items()
            if end - 1 <= timestamp
        ]
        for start in dead:
            del seen[start]
        return [], [timestamp]

    def flush(self):
        self._seen.clear()
        return [], []

    def buffered(self) -> int:
        return sum(len(values) for _, values in self._seen.values())


class _HeapReleaseKernel(TerminalKernel):
    """Shared start-ordered release discipline of SessionWindow/Coalesce.

    Closed groups wait in a ``(start, seq, …)`` heap; ``_release`` pops
    everything at or below the clamp bound (min of the promise and one
    below the earliest still-open start) and forwards the bound as a
    punctuation only when it advances the output watermark.
    """

    def __init__(self):
        self._open = {}
        self._closed = []
        self._seq = 0
        self._out_watermark = _NEG_INF

    def _push_closed(self, start, end, key, payload):
        heapq.heappush(self._closed, (start, self._seq, end, key, payload))
        self._seq += 1

    def _release(self, timestamp):
        open_floor = min(
            (group[0] for group in self._open.values()), default=None
        )
        bound = timestamp if open_floor is None else min(
            timestamp, open_floor - 1
        )
        events = []
        closed = self._closed
        while closed and closed[0][0] <= bound:
            start, _, end, key, payload = heapq.heappop(closed)
            events.append(Event(start, end, key, payload))
        puncts = []
        if bound != float("inf") and bound > self._out_watermark:
            self._out_watermark = bound
            puncts.append(bound)
        return events, puncts

    def buffered(self) -> int:
        return len(self._open) + len(self._closed)


#: Scalar fold table for session aggregates: initial state + per-value
#: fold + finalize, matching the row ``Aggregate`` classes exactly
#: (``None`` value index means the fold ignores values, e.g. count).
_SCALAR_FOLDS = {
    "count": (lambda: 0, lambda state, value: state + 1,
              lambda state: state),
    "sum": (lambda: 0, lambda state, value: state + value,
            lambda state: state),
    "min": (lambda: None,
            lambda state, value:
                value if state is None or value < state else state,
            lambda state: state),
    "max": (lambda: None,
            lambda state, value:
                value if state is None or value > state else state,
            lambda state: state),
    "avg": (lambda: (0, 0),
            lambda state, value: (state[0] + value, state[1] + 1),
            lambda state: state[0] / state[1] if state[1] else None),
}


class SessionKernel(_HeapReleaseKernel):
    """``SessionWindow``: per-key gap sessions over the sorted rounds.

    The scalar state machine is the row operator's, run over unpacked
    rows: dict-insertion order (reopen keeps a key's slot, punctuation
    retirement pops it) drives the retirement ``seq`` exactly as the row
    operator's dict iteration does, so heap ties break identically.
    """

    name = "session_window"

    def __init__(self, timeout, fold="count", value_index=None):
        super().__init__()
        if timeout < 1:
            raise ValueError("timeout must be >= 1")
        self.timeout = timeout
        self.fold = fold
        self.value_index = value_index
        self._initial, self._fold, self._result = _SCALAR_FOLDS[fold]

    def _retire(self, key, session):
        start, last, state = session
        self._push_closed(
            start, last + self.timeout, key, self._result(state)
        )

    def ingest(self, sync, other, keys, cols):
        timeout = self.timeout
        fold = self._fold
        open_ = self._open
        vi = self.value_index
        for t, _, key, payload in _rows(sync, other, keys, cols):
            value = payload[vi] if vi is not None else None
            session = open_.get(key)
            if session is not None and t - session[1] < timeout:
                session[1] = t
                session[2] = fold(session[2], value)
                continue
            if session is not None:
                self._retire(key, session)
            open_[key] = [t, t, fold(self._initial(), value)]
        return []

    def punctuate(self, timestamp):
        timeout = self.timeout
        for key in [
            key for key, session in self._open.items()
            if session[1] + timeout - 1 <= timestamp
        ]:
            self._retire(key, self._open.pop(key))
        return self._release(timestamp)

    def flush(self):
        for key in list(self._open):
            self._retire(key, self._open.pop(key))
        return self._release(float("inf"))

    def describe(self):
        return f"session_window[{self.timeout},{self.fold}]"


class CoalesceKernel(_HeapReleaseKernel):
    """``Coalesce`` with the default count combiner (``combine=None``)."""

    name = "coalesce"

    def ingest(self, sync, other, keys, cols):
        open_ = self._open
        for t, o, key, _ in _rows(sync, other, keys, cols):
            group = open_.get(key)
            if group is not None:
                if t <= group[1]:
                    if o > group[1]:
                        group[1] = o
                    group[2] += 1
                    continue
                self._push_closed(group[0], group[1], key, group[2])
            open_[key] = [t, o, 1]
        return []

    def punctuate(self, timestamp):
        for key in [
            key for key, group in self._open.items()
            if group[1] <= timestamp
        ]:
            group = self._open.pop(key)
            self._push_closed(group[0], group[1], key, group[2])
        return self._release(timestamp)

    def flush(self):
        for key in list(self._open):
            group = self._open.pop(key)
            self._push_closed(group[0], group[1], key, group[2])
        return self._release(float("inf"))


class SelfJoinKernel(TerminalKernel):
    """``self_join()``: the stream's temporal equi-join with itself.

    The row plan wires one ``TemporalJoin`` with both ports fed by the
    same sort node, port 0 before port 1.  Unrolling that delivery order
    for an arriving event ``e`` with buffered same-key partners
    ``p1, p2`` gives the emission sequence ``(e,p1), (e,p2)`` (port 0:
    event-left), then ``(p1,e), (p2,e), (e,e)`` (port 1: event-right —
    the self-pair comes last because port 0 already buffered ``e``).
    Between deliveries both sides hold identical state, so one state
    dict suffices; the same collapse applies to the two per-port
    punctuation deliveries (evict both sides, emit once if advancing).
    """

    name = "self_join"

    def __init__(self):
        self._state = {}  # key -> list of (sync, other, payload)
        self._watermark = _NEG_INF
        self._emitted_watermark = _NEG_INF

    def ingest(self, sync, other, keys, cols):
        state = self._state
        out = []
        for t, o, key, payload in _rows(sync, other, keys, cols):
            partners = state.get(key)
            if partners:
                for ps, po, pp in partners:
                    start = t if t > ps else ps
                    end = o if o < po else po
                    if start < end:
                        out.append(Event(start, end, key, (payload, pp)))
                for ps, po, pp in partners:
                    start = t if t > ps else ps
                    end = o if o < po else po
                    if start < end:
                        out.append(Event(start, end, key, (pp, payload)))
                if t < o:
                    out.append(Event(t, o, key, (payload, payload)))
                partners.append((t, o, payload))
            else:
                if t < o:
                    out.append(Event(t, o, key, (payload, payload)))
                state[key] = [(t, o, payload)]
        return out

    def punctuate(self, timestamp):
        if timestamp > self._watermark:
            self._watermark = timestamp
            state = self._state
            dead = []
            for key, partners in state.items():
                partners[:] = [
                    row for row in partners if row[1] > timestamp
                ]
                if not partners:
                    dead.append(key)
            for key in dead:
                del state[key]
        puncts = []
        if (
            self._watermark > self._emitted_watermark
            and self._watermark != _NEG_INF
        ):
            self._emitted_watermark = self._watermark
            puncts.append(self._watermark)
        return [], puncts

    def flush(self):
        self._state = {}
        return [], []

    def buffered(self) -> int:
        return sum(len(partners) for partners in self._state.values())


class PatternKernel(TerminalKernel):
    """``PatternMatch``: vectorized predicate masks + sparse deque scan.

    Both predicates evaluate once per round over whole columns; the
    scalar loop touches only rows where either mask fired (rows firing
    neither change no state in the row operator either).
    """

    name = "pattern_match"

    def __init__(self, first, second, within):
        if within < 1:
            raise ValueError("within must be >= 1")
        self.first = first
        self.second = second
        self.within = within
        self._pending = {}  # key -> deque of first-step sync_times

    def ingest(self, sync, other, keys, cols):
        if sync.size == 0:
            return []
        m1 = self.first.mask(sync, keys, cols)
        m2 = self.second.mask(sync, keys, cols)
        active = np.flatnonzero(m1 | m2)
        if active.size == 0:
            return []
        within = self.within
        pending_map = self._pending
        out = []
        sync_l = sync.tolist()
        other_l = other.tolist()
        keys_l = keys.tolist()
        for i in active.tolist():
            key = keys_l[i]
            now = sync_l[i]
            if m2[i]:
                pending = pending_map.get(key)
                if pending:
                    while pending and pending[0] <= now - within:
                        pending.popleft()
                    if pending:
                        end = other_l[i]
                        for first_sync in pending:
                            if first_sync < now:
                                out.append(Event(
                                    now, end, key, (first_sync, now)
                                ))
            if m1[i]:
                pending_map.setdefault(key, deque()).append(now)
        return out

    def punctuate(self, timestamp):
        horizon = timestamp - self.within
        dead = []
        for key, pending in self._pending.items():
            while pending and pending[0] <= horizon:
                pending.popleft()
            if not pending:
                dead.append(key)
        for key in dead:
            del self._pending[key]
        return [], [timestamp]

    def flush(self):
        return [], []

    def buffered(self) -> int:
        return sum(len(pending) for pending in self._pending.values())

    def describe(self):
        return f"pattern_match[{self.first!r} -> {self.second!r}]"


class GroupApplyKernel(TerminalKernel):
    """``GroupApply`` over a traced straight-line body.

    The compiler traces the body's operator chain (structured ``where``
    stages, one window alignment, an optional aggregate terminal); this
    kernel then runs it vectorized: body stages are row-local column
    transforms applied to the whole round, and the aggregate folds via
    the shared :class:`GroupedWindowKernel` machinery.  What survives of
    the row operator's per-key sub-pipelines is the *emission tie
    order*: closed windows with equal starts emit in key-first-seen
    order (sub-pipelines materialize on a key's first raw event, before
    any body filtering), not key-ascending order — ``_ranks`` replays
    that.  Stage-only bodies pass transformed rows through immediately.
    """

    name = "group_apply"

    def __init__(self, stages, window, spec=None, value_index=None):
        self.stages = tuple(stages)
        self.window = window
        self.spec = spec
        self.value_index = value_index
        self._ranks = {}  # raw key -> first-seen rank
        self._fold = (
            GroupedWindowKernel(window, spec) if spec is not None else None
        )

    def _register(self, keys):
        ranks = self._ranks
        if keys.size == 0:
            return
        _, first_idx = np.unique(keys, return_index=True)
        first_idx.sort()
        for i in first_idx.tolist():
            key = int(keys[i])
            if key not in ranks:
                ranks[key] = len(ranks)

    def ingest(self, sync, other, keys, cols):
        # Sub-pipelines materialize on the raw (pre-body) event, so
        # first-seen ranks register before any body stage filters.
        self._register(keys)
        for stage in self.stages:
            sync, other, keys, cols = stage.apply(sync, other, keys, cols)
        if self._fold is None:
            payloads = (
                list(zip(*(col.tolist() for col in cols))) if cols
                else [()] * sync.size
            )
            return [
                Event(t, o, key, payload)
                for t, o, key, payload in zip(
                    sync.tolist(), other.tolist(), keys.tolist(), payloads
                )
            ]
        values = (
            cols[self.value_index]
            if self.spec.needs_value else None
        )
        self._fold.accumulate(sync, keys, values)
        return []

    def _close(self, bound):
        if self._fold is None:
            return []
        windows = self._fold.windows
        if not windows:
            return []
        window = self.window
        due = sorted(
            start for start in windows
            if bound is None or start + window - 1 <= bound
        )
        ranks = self._ranks
        result = self.spec.result
        events = []
        for start in due:
            groups = windows.pop(start)
            for key in sorted(groups, key=ranks.__getitem__):
                events.append(Event(
                    start, start + window, key, result(groups[key])
                ))
        return events

    def punctuate(self, timestamp):
        # GroupApply broadcasts the promise into each sub-pipeline
        # (where the body window aligns it) but forwards the *original*
        # punctuation downstream, unconditionally.
        bound = timestamp
        for stage in self.stages:
            bound = stage.transform_punct(bound)
        return self._close(bound), [timestamp]

    def flush(self):
        return self._close(None), []

    def buffered(self) -> int:
        return self._fold.buffered() if self._fold is not None else 0

    def describe(self):
        inner = [stage.describe() for stage in self.stages]
        if self.spec is not None:
            inner.append(f"aggregate[{self.spec.name}]")
        return f"group_apply[{' -> '.join(inner)}]"


def _event_payload(event):
    return event.payload


class RawTopKKernel(TerminalKernel):
    """``WindowTopK`` directly over the sorted rows (``score_fn=None``).

    Scores are the raw payload tuples; ties resolve by insertion order
    under Python's stable descending sort, which is deterministic now
    that every sorter breaks equal-sync ties by arrival.
    """

    name = "top_k"

    def __init__(self, k):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.windows = {}  # start -> (end, best event list)
        self._out_watermark = _NEG_INF

    def ingest(self, sync, other, keys, cols):
        windows = self.windows
        k4 = 4 * self.k
        for t, o, key, payload in _rows(sync, other, keys, cols):
            entry = windows.get(t)
            if entry is None:
                best = []
                windows[t] = (o, best)
            else:
                best = entry[1]
            best.append(Event(t, o, key, payload))
            if len(best) > k4:
                best.sort(key=_event_payload, reverse=True)
                del best[self.k:]
        return []

    def _close(self, up_to):
        if not self.windows:
            return []
        due = sorted(
            start for start, (end, _) in self.windows.items()
            if up_to is None or end - 1 <= up_to
        )
        events = []
        for start in due:
            _, best = self.windows.pop(start)
            best.sort(key=_event_payload, reverse=True)
            events.extend(best[: self.k])
        return events

    def punctuate(self, timestamp):
        events = self._close(timestamp)
        bound = timestamp
        if self.windows:
            bound = min(bound, min(self.windows) - 1)
        puncts = []
        if bound > self._out_watermark:
            self._out_watermark = bound
            puncts.append(bound)
        return events, puncts

    def flush(self):
        return self._close(None), []

    def buffered(self) -> int:
        return sum(len(best) for _, best in self.windows.values())

    def describe(self):
        return f"top_k[{self.k}]"
