"""Numpy kernel library shared by the columnar compiler and shard plans.

Trill's performance story (§I-A) is that *every* relational operator runs
as a tight loop over columnar batches; our reproduction grew vectorized
fragments twice (the ad-hoc ``ColumnarPipeline``, the parallel runtime's
grouped count/sum executor) without a shared substrate.  This module is
that substrate:

* a **structured expression DSL** (:func:`field`, :func:`key_field`,
  :func:`sync_field`) whose predicates and selectors are *both* plain
  callables — so the row engine's ``Where``/``Sum`` consume them
  unchanged — and vectorizable column programs the compiler lowers onto
  whole numpy arrays.  A query written against the DSL is eligible for
  the fused columnar path; a query written with opaque lambdas falls
  back to the row engine (the compiler cannot introspect Python code).
* an **aggregate spec table** (:data:`AGGREGATE_SPECS`) mapping
  ``count``/``sum``/``avg``/``min``/``max`` onto ``reduceat`` folds with
  explicit partial-state merge and finalization, replicating the row
  aggregates' fold interface (``initial``/``accumulate``/``result``)
  batch-wise.
* the **windowed kernel state machines**
  (:class:`GroupedWindowKernel`, :class:`WindowTopKKernel`) that
  replicate ``TumblingWindow -> (Grouped)WindowAggregate [-> WindowTopK]``
  byte-for-byte: the window-close rule (``end - 1 <= T``), the clamped
  forwarded punctuation (``min(T, min(open) - 1)``, suppressed unless it
  advances), emission in ascending (window, key) order, and the
  ADJUST-policy subtlety that a late event may re-open an
  already-emitted window.

Both the single-process compiler (:mod:`repro.engine.compiler`) and the
parallel shard plans (:mod:`repro.parallel.plans`) build on these
kernels, so an aggregate added here is inherited by every vectorized
path at once.
"""

from __future__ import annotations

import operator as _op

import numpy as np

__all__ = [
    "Expr",
    "Predicate",
    "field",
    "key_field",
    "sync_field",
    "AggregateSpec",
    "AGGREGATE_SPECS",
    "GroupedWindowKernel",
    "WindowTopKKernel",
]

_NEG_INF = float("-inf")


# ---------------------------------------------------------------------------
# Structured expressions: one object, two evaluators.
# ---------------------------------------------------------------------------

_ARITH = {
    "%": _op.mod,
    "//": _op.floordiv,
    "+": _op.add,
    "-": _op.sub,
    "*": _op.mul,
}

_COMPARE = {
    "==": _op.eq,
    "!=": _op.ne,
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
}


def _wrap(value):
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"expression operands must be int constants or expressions, "
            f"got {value!r}"
        )
    return _Const(value)


class Expr:
    """A structured scalar expression over one event.

    The row engine evaluates it per event (``_scalar``); the columnar
    compiler evaluates it once per batch over whole columns
    (``_vector``).  Arithmetic with int constants builds derived
    expressions; comparisons build :class:`Predicate` objects.
    """

    __hash__ = object.__hash__

    def _scalar(self, event):
        raise NotImplementedError

    def _vector(self, sync, keys, payload):
        raise NotImplementedError

    # -- arithmetic ------------------------------------------------------

    def __mod__(self, other):
        return _BinOp("%", self, _wrap(other))

    def __floordiv__(self, other):
        return _BinOp("//", self, _wrap(other))

    def __add__(self, other):
        return _BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return _BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return _BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return _BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return _BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return _BinOp("*", _wrap(other), self)

    # -- comparisons -> predicates --------------------------------------

    def __eq__(self, other):
        return _Compare("==", self, _wrap(other))

    def __ne__(self, other):
        return _Compare("!=", self, _wrap(other))

    def __lt__(self, other):
        return _Compare("<", self, _wrap(other))

    def __le__(self, other):
        return _Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return _Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return _Compare(">=", self, _wrap(other))


class _Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _scalar(self, event):
        return self.value

    def _vector(self, sync, keys, payload):
        return self.value

    def __repr__(self):
        return repr(self.value)


class _PayloadField(Expr):
    """Payload column reference; also a row-engine payload *selector*."""

    __slots__ = ("index",)

    def __init__(self, index):
        if index < 0:
            raise ValueError("payload field index must be >= 0")
        self.index = index

    def __call__(self, payload):
        # Aggregate-selector protocol: ``Sum(field(i))`` on the row path.
        return payload[self.index]

    def _scalar(self, event):
        return event.payload[self.index]

    def _vector(self, sync, keys, payload):
        return payload[self.index]

    def __repr__(self):
        return f"field({self.index})"


class _KeyField(Expr):
    """Grouping-key reference; also a row-engine ``key_fn``."""

    __slots__ = ()

    def __call__(self, event):
        return event.key

    def _scalar(self, event):
        return event.key

    def _vector(self, sync, keys, payload):
        return keys

    def __repr__(self):
        return "key()"


class _SyncField(Expr):
    __slots__ = ()

    def __call__(self, event):
        return event.sync_time

    def _scalar(self, event):
        return event.sync_time

    def _vector(self, sync, keys, payload):
        return sync

    def __repr__(self):
        return "sync()"


class _BinOp(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        return _ARITH[self.op](self.lhs._scalar(event), self.rhs._scalar(event))

    def _vector(self, sync, keys, payload):
        return _ARITH[self.op](
            self.lhs._vector(sync, keys, payload),
            self.rhs._vector(sync, keys, payload),
        )

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Predicate:
    """A boolean expression; callable on an event, maskable on columns.

    The row engine's ``Where`` calls it per event; the compiler calls
    :meth:`mask` once per batch.  Combine with ``&``, ``|``, ``~``.
    """

    __hash__ = object.__hash__

    def __call__(self, event):
        return bool(self._scalar(event))

    def _scalar(self, event):
        raise NotImplementedError

    def _vector(self, sync, keys, payload):
        raise NotImplementedError

    def mask(self, sync, keys, payload):
        """Vectorized evaluation -> boolean selection bitmap."""
        return np.asarray(
            self._vector(sync, keys, payload), dtype=bool
        )

    def __and__(self, other):
        return _BoolOp("&", self, other)

    def __or__(self, other):
        return _BoolOp("|", self, other)

    def __invert__(self):
        return _Not(self)


class _Compare(Predicate):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        return _COMPARE[self.op](
            self.lhs._scalar(event), self.rhs._scalar(event)
        )

    def _vector(self, sync, keys, payload):
        return _COMPARE[self.op](
            self.lhs._vector(sync, keys, payload),
            self.rhs._vector(sync, keys, payload),
        )

    def __repr__(self):
        return f"{self.lhs!r} {self.op} {self.rhs!r}"


class _BoolOp(Predicate):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        if not isinstance(lhs, Predicate) or not isinstance(rhs, Predicate):
            raise TypeError("&/| combine predicates, not raw expressions")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def _scalar(self, event):
        left = self.lhs._scalar(event)
        right = self.rhs._scalar(event)
        return (left and right) if self.op == "&" else (left or right)

    def _vector(self, sync, keys, payload):
        left = self.lhs.mask(sync, keys, payload)
        right = self.rhs.mask(sync, keys, payload)
        return (left & right) if self.op == "&" else (left | right)

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class _Not(Predicate):
    __slots__ = ("inner",)

    def __init__(self, inner):
        if not isinstance(inner, Predicate):
            raise TypeError("~ inverts a predicate, not a raw expression")
        self.inner = inner

    def _scalar(self, event):
        return not self.inner._scalar(event)

    def _vector(self, sync, keys, payload):
        return ~self.inner.mask(sync, keys, payload)

    def __repr__(self):
        return f"~({self.inner!r})"


def field(index) -> _PayloadField:
    """Reference payload column ``index`` (predicate term or selector)."""
    return _PayloadField(index)


def key_field() -> _KeyField:
    """Reference the event key (predicate term or grouping ``key_fn``)."""
    return _KeyField()


def sync_field() -> _SyncField:
    """Reference the event sync time (predicate term)."""
    return _SyncField()


# ---------------------------------------------------------------------------
# Aggregate specs: vectorized folds with mergeable partial states.
# ---------------------------------------------------------------------------


class AggregateSpec:
    """One windowed aggregate as a batch fold.

    ``fold`` turns one lexsorted released batch into per-group partial
    states (``group_idx`` are the run starts, ``sizes`` the run
    lengths); ``merge`` combines partials for a group that spans
    multiple punctuation rounds; ``result`` finalizes the state into the
    output payload, matching the row aggregate's ``result`` exactly
    (ints for count/sum/min/max, a Python float for avg).
    """

    name = None
    needs_value = False

    def fold(self, values, group_idx, sizes):
        raise NotImplementedError

    def merge(self, state, partial):
        raise NotImplementedError

    def result(self, state):
        return state


class _CountSpec(AggregateSpec):
    name = "count"
    needs_value = False

    def fold(self, values, group_idx, sizes):
        return sizes.tolist()

    def merge(self, state, partial):
        return state + partial


class _SumSpec(AggregateSpec):
    name = "sum"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.add.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return state + partial


class _MinSpec(AggregateSpec):
    name = "min"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.minimum.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return partial if partial < state else state


class _MaxSpec(AggregateSpec):
    name = "max"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        return np.maximum.reduceat(values, group_idx).tolist()

    def merge(self, state, partial):
        return partial if partial > state else state


class _AvgSpec(AggregateSpec):
    name = "avg"
    needs_value = True

    def fold(self, values, group_idx, sizes):
        totals = np.add.reduceat(values, group_idx)
        return list(zip(totals.tolist(), sizes.tolist()))

    def merge(self, state, partial):
        return (state[0] + partial[0], state[1] + partial[1])

    def result(self, state):
        total, count = state
        return total / count if count else None


#: Vectorizable aggregates by name, shared by the compiler and the
#: parallel ``GroupedAggregatePlan``.
AGGREGATE_SPECS = {
    spec.name: spec
    for spec in (_CountSpec(), _SumSpec(), _MinSpec(), _MaxSpec(), _AvgSpec())
}


# ---------------------------------------------------------------------------
# Windowed kernel state machines.
# ---------------------------------------------------------------------------


class _WindowedKernelBase:
    """Shared close/forward discipline of ``_WindowedBase`` on kernels.

    A window ``[start, start + window)`` closes when
    ``start + window - 1 <= T``; the forwarded punctuation is clamped
    below the earliest still-open window and suppressed unless it
    advances the output watermark.
    """

    def __init__(self, window):
        if window < 1:
            raise ValueError("window size must be >= 1")
        self.window = window
        self.windows = {}
        self.out_watermark = _NEG_INF

    def _due(self, up_to):
        window = self.window
        return sorted(
            start for start in self.windows
            if up_to is None or start + window - 1 <= up_to
        )

    def forward(self, bound):
        """Clamped output punctuation for input promise ``bound``.

        Returns the timestamp to forward downstream, or ``None`` when
        the promise would not advance the output watermark (the row
        operators' suppression rule).
        """
        if self.windows:
            bound = min(bound, min(self.windows) - 1)
        if bound > self.out_watermark:
            self.out_watermark = bound
            return bound
        return None


class GroupedWindowKernel(_WindowedKernelBase):
    """Vectorized ``(Grouped)WindowAggregate`` over window-aligned rows.

    ``accumulate`` folds one released batch (``starts`` already floored
    to window starts) into per-``(start, key)`` partial states via one
    lexsort + ``reduceat``; ``close`` pops due windows and emits
    ``(start, key, result)`` rows ascending by start then key — exactly
    the row operators' emission order.  With ``grouped=False`` (or
    ``keys=None``) every row folds into group key ``0``, replicating the
    ungrouped ``WindowAggregate``.
    """

    def __init__(self, window, spec, grouped=True):
        super().__init__(window)
        self.spec = spec
        self.grouped = grouped

    def accumulate(self, starts, keys=None, values=None):
        if starts.size == 0:
            return
        if not self.grouped or keys is None:
            order = np.argsort(starts, kind="stable")
            starts = starts[order]
            keys = None
            change = np.diff(starts) != 0
        else:
            order = np.lexsort((keys, starts))
            starts = starts[order]
            keys = keys[order]
            change = (np.diff(starts) != 0) | (np.diff(keys) != 0)
        boundaries = np.flatnonzero(change) + 1
        group_idx = np.concatenate(([0], boundaries))
        sizes = np.diff(np.append(group_idx, starts.size))
        vals = values[order] if values is not None else None
        partials = self.spec.fold(vals, group_idx, sizes)
        start_list = starts[group_idx].tolist()
        if keys is None:
            key_list = [0] * len(start_list)
        else:
            key_list = keys[group_idx].tolist()
        merge = self.spec.merge
        windows = self.windows
        for start, key, partial in zip(start_list, key_list, partials):
            groups = windows.get(start)
            if groups is None:
                groups = windows[start] = {}
            if key in groups:
                groups[key] = merge(groups[key], partial)
            else:
                groups[key] = partial

    def close(self, up_to):
        """Pop windows due at ``up_to`` (all when ``None``) and return
        ``(start, key, result)`` rows in emission order."""
        if not self.windows:
            return []
        rows = []
        result = self.spec.result
        for start in self._due(up_to):
            groups = self.windows.pop(start)
            for key in sorted(groups):
                rows.append((start, key, result(groups[key])))
        return rows

    def buffered(self) -> int:
        return sum(len(groups) for groups in self.windows.values())


class WindowTopKKernel(_WindowedKernelBase):
    """Replicates ``WindowTopK`` over ``(start, key, value)`` rows.

    Consumes the grouped kernel's closed rows (arriving in ascending key
    order per window, which fixes tie resolution identically to the row
    operator's stable sort) and keeps a running top-k selection per
    window with the same ``4k`` trim rule.
    """

    def __init__(self, window, k):
        super().__init__(window)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def add(self, start, key, value):
        rows = self.windows.get(start)
        if rows is None:
            rows = self.windows[start] = []
        rows.append((key, value))
        if len(rows) > 4 * self.k:
            rows.sort(key=_row_value, reverse=True)
            del rows[self.k:]

    def close(self, up_to):
        """Pop due windows; return their top-k ``(start, key, value)``
        rows, score-descending with ties in insertion (key) order."""
        if not self.windows:
            return []
        out = []
        for start in self._due(up_to):
            rows = self.windows.pop(start)
            rows.sort(key=_row_value, reverse=True)
            out.extend(
                (start, key, value) for key, value in rows[: self.k]
            )
        return out

    def buffered(self) -> int:
        return sum(len(rows) for rows in self.windows.values())


def _row_value(row):
    return row[1]
