"""Trill-style event model.

Each data event carries two timestamps (Section IV-A2): ``sync_time`` — the
event time used for ordering, windowing and punctuations — and
``other_time`` — the end of the event's validity interval, adjusted by
window operators.  Following the paper's evaluation setup, events also carry
a 32-bit grouping key, a 64-bit hash, and four 32-bit integer payload
fields; :data:`EVENT_BYTES` is the byte cost used for memory accounting.

A :class:`Punctuation` with timestamp ``T`` promises that no further event
with ``sync_time`` <= ``T`` will arrive (Section III-A).
"""

from __future__ import annotations

__all__ = ["Event", "Punctuation", "EVENT_BYTES", "is_punctuation"]

#: Bytes per event in Trill's layout: 2×64-bit timestamps, 32-bit key,
#: 64-bit hash, 4×32-bit payload fields (Section VI-C's accounting).
EVENT_BYTES = 8 + 8 + 4 + 8 + 4 * 4


class Event:
    """One data event. Immutable by convention; operators copy-on-write."""

    __slots__ = ("sync_time", "other_time", "key", "payload")

    def __init__(self, sync_time, other_time=None, key=0, payload=()):
        self.sync_time = sync_time
        self.other_time = sync_time + 1 if other_time is None else other_time
        self.key = key
        self.payload = payload

    def with_times(self, sync_time, other_time):
        """Copy with adjusted timestamps (window-operator primitive)."""
        return Event(sync_time, other_time, self.key, self.payload)

    def with_payload(self, payload):
        """Copy with a replaced payload (projection primitive)."""
        return Event(self.sync_time, self.other_time, self.key, payload)

    def with_key(self, key):
        """Copy with a replaced grouping key (group-apply primitive)."""
        return Event(self.sync_time, self.other_time, key, self.payload)

    def __eq__(self, other):
        return (
            isinstance(other, Event)
            and self.sync_time == other.sync_time
            and self.other_time == other.other_time
            and self.key == other.key
            and self.payload == other.payload
        )

    def __hash__(self):
        return hash((self.sync_time, self.other_time, self.key, self.payload))

    def __repr__(self):
        return (
            f"Event(sync={self.sync_time}, other={self.other_time}, "
            f"key={self.key}, payload={self.payload!r})"
        )


class Punctuation:
    """Progress marker: no later event will carry sync_time <= timestamp.

    ``trace_id`` is an optional observability stamp: the
    :class:`~repro.observability.PunctuationTracer` assigns one at ingress
    so spans recorded while the punctuation propagates through the DAG can
    be correlated.  It takes no part in equality or hashing — two
    punctuations are the same promise if their timestamps match.
    """

    __slots__ = ("timestamp", "trace_id")

    def __init__(self, timestamp, trace_id=None):
        self.timestamp = timestamp
        self.trace_id = trace_id

    def __eq__(self, other):
        return (
            isinstance(other, Punctuation)
            and self.timestamp == other.timestamp
        )

    def __hash__(self):
        return hash(("punctuation", self.timestamp))

    def __repr__(self):
        return f"Punctuation({self.timestamp})"


def is_punctuation(element) -> bool:
    """True when a stream element is a punctuation rather than an event."""
    return type(element) is Punctuation
