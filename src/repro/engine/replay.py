"""Replay ingress: processing-time-driven punctuation.

The count-based :class:`~repro.engine.punctuation.PunctuationPolicy`
never punctuates a quiet stream — results stall until more data shows
up.  Real deployments punctuate on a *processing-time* timer.  This
module simulates that with a deterministic tick clock (no sleeping):

* a rate function says how many events arrive on each tick (constant,
  bursty, or anything callable);
* every ``punctuation_period`` ticks a punctuation is emitted at
  ``high_watermark − reorder_latency`` even if no events arrived —
  so downstream latency is bounded by wall-clock, not by traffic.

The emitted element stream is ordinary events/punctuations, so every
engine entry point consumes it unchanged.
"""

from __future__ import annotations

from repro.engine.event import Punctuation

__all__ = ["replay", "constant_rate", "bursty_rate"]


def constant_rate(events_per_tick):
    """Rate function: the same number of arrivals every tick."""
    if events_per_tick < 0:
        raise ValueError("events_per_tick must be non-negative")

    def rate(tick):
        return events_per_tick

    return rate


def bursty_rate(base, burst_every, burst_size, quiet_after=None,
                quiet_ticks=0):
    """Rate function: ``base`` arrivals/tick, a burst every
    ``burst_every`` ticks, and optionally a quiet gap (0 arrivals) of
    ``quiet_ticks`` starting at tick ``quiet_after``."""

    def rate(tick):
        if quiet_after is not None and \
                quiet_after <= tick < quiet_after + quiet_ticks:
            return 0
        if burst_every and tick % burst_every == burst_every - 1:
            return burst_size
        return base

    return rate


def replay(events, rate_fn, punctuation_period, reorder_latency=0,
           idle_advance=0, final_punctuation=True):
    """Yield events/punctuations under a simulated processing-time clock.

    ``events`` is consumed in arrival order; ``rate_fn(tick)`` gives the
    number of events delivered on each tick.  A punctuation is emitted
    every ``punctuation_period`` ticks at ``high_watermark −
    reorder_latency`` (monotone-clamped).

    ``idle_advance`` is the idle-source policy: when the event-time
    watermark has not moved since the last punctuation (a quiet stream),
    the punctuation instead advances by ``idle_advance`` event-time units
    per elapsed tick — windows keep closing at wall-clock pace, at the
    risk of declaring genuinely delayed events late (the same trade
    Flink's idleness detection makes).  ``0`` disables it, reproducing
    the count-based policy's stall-on-quiet behaviour.
    """
    if punctuation_period < 1:
        raise ValueError("punctuation_period must be >= 1")
    if reorder_latency < 0 or idle_advance < 0:
        raise ValueError("latency and idle_advance must be non-negative")
    iterator = iter(events)
    high_watermark = None
    last_punctuation = None
    tick = 0
    exhausted = False
    while not exhausted:
        count = rate_fn(tick)
        for _ in range(count):
            event = next(iterator, None)
            if event is None:
                exhausted = True
                break
            if high_watermark is None or event.sync_time > high_watermark:
                high_watermark = event.sync_time
            yield event
        tick += 1
        if tick % punctuation_period == 0 and high_watermark is not None:
            timestamp = high_watermark - reorder_latency
            if idle_advance and last_punctuation is not None and \
                    timestamp <= last_punctuation:
                timestamp = last_punctuation + \
                    idle_advance * punctuation_period
            if last_punctuation is None or timestamp > last_punctuation:
                last_punctuation = timestamp
                yield Punctuation(timestamp)
    if final_punctuation and high_watermark is not None:
        if last_punctuation is None or high_watermark > last_punctuation:
            yield Punctuation(high_watermark)
