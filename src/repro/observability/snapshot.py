"""Structured export of one pipeline execution's metrics.

:class:`PipelineSnapshot` is the single JSON document the observability
layer produces: per-operator metrics, punctuation-trace statistics, the
pipeline-wide buffered-occupancy timeline, and (optionally) the
:class:`~repro.framework.memory.MemoryMeter`'s byte accounting — the
schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json

__all__ = ["PipelineSnapshot", "SCHEMA"]

#: Schema identifier embedded in every export.
SCHEMA = "repro.pipeline-metrics/1"


class PipelineSnapshot:
    """An immutable, JSON-ready view of a pipeline's collected metrics."""

    def __init__(self, operators, punctuation=None, occupancy=None,
                 memory=None, meta=None, resilience=None, parallel=None,
                 spill=None, serve=None):
        self._doc = {
            "schema": SCHEMA,
            "meta": dict(meta or {}),
            "operators": list(operators),
            "punctuation": punctuation,
            "occupancy": occupancy,
            "memory": memory,
            "resilience": resilience,
            "parallel": parallel,
            "spill": spill,
            "serve": serve,
            "totals": self._totals(operators, occupancy),
        }

    @staticmethod
    def _totals(operators, occupancy) -> dict:
        dropped = sum(op.get("dropped", 0) for op in operators)
        return {
            "operators": len(operators),
            "events_in": sum(op["events"]["in"] for op in operators),
            "events_out": sum(op["events"]["out"] for op in operators),
            "dropped": dropped,
            "busy_s": sum(op["busy_s"]["total"] for op in operators),
            "peak_buffered_events": (
                occupancy["peak"] if occupancy else
                max((op["occupancy"]["peak"] for op in operators), default=0)
            ),
        }

    # -- access -----------------------------------------------------------

    def as_dict(self) -> dict:
        """The full export document (shared, do not mutate)."""
        return self._doc

    @property
    def operators(self):
        """Per-operator metric dicts, pipeline discovery order."""
        return self._doc["operators"]

    def operator(self, name) -> dict:
        """One operator's metrics by diagnostic label."""
        for op in self._doc["operators"]:
            if op["name"] == name:
                return op
        raise KeyError(name)

    @property
    def punctuation(self):
        """Punctuation trace statistics (None when tracing was off)."""
        return self._doc["punctuation"]

    @property
    def resilience(self):
        """Supervised-run fault/recovery summary (None for plain runs)."""
        return self._doc["resilience"]

    @property
    def parallel(self):
        """Parallel-runtime accounting — coordinator round/merge counters
        and per-shard worker stats (None for single-process runs)."""
        return self._doc["parallel"]

    @property
    def autoscale(self):
        """Adaptive worker-pool accounting (None unless the run used
        ``--parallel auto``): policy knobs, every emitted decision, the
        applied rescale schedule, the per-round signal trace, retired
        pool epochs, and total worker-seconds.  Rides inside the
        ``parallel`` section (``parallel.autoscale``) — this accessor
        just surfaces it."""
        parallel = self._doc["parallel"]
        if not isinstance(parallel, dict):
            return None
        return parallel.get("autoscale")

    @property
    def spill(self):
        """Bounded-memory spill metrics (None for unbudgeted runs):
        runs spilled, bytes written/read, merge fan-in, and the peak
        resident buffer the budget was enforced against."""
        return self._doc["spill"]

    @property
    def serve(self):
        """Always-on service section (None outside ``repro serve``):
        per-tenant queue depths, shed/evict/quarantine counters, standing
        query registry, and delivery-lag quantiles."""
        return self._doc["serve"]

    @property
    def totals(self) -> dict:
        """Cross-operator aggregates."""
        return self._doc["totals"]

    # -- export -----------------------------------------------------------

    def to_json(self, indent=2) -> str:
        """Serialize the export document."""
        return json.dumps(self._doc, indent=indent, default=_jsonable)

    def save(self, path, indent=2):
        """Write the JSON export to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")

    def __repr__(self):
        totals = self._doc["totals"]
        return (
            f"PipelineSnapshot(operators={totals['operators']}, "
            f"events_in={totals['events_in']}, "
            f"peak_buffered={totals['peak_buffered_events']})"
        )


def _jsonable(value):
    """Fallback serializer: infinities and exotic numerics to strings."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
