"""The metrics registry: attach/detach instrumentation on live pipelines.

``MetricsRegistry.attach(pipeline)`` walks the pipeline's operators (plus
any routing operator's ``out_ports``) and installs per-instance wrappers
around their signal and emit methods via
:meth:`repro.engine.operators.base.Operator.instrument`.  The wrappers

* count events/punctuations/flushes in and out,
* accumulate *exclusive* wall-clock time per signal (child time reached
  synchronously through ``emit_*`` is subtracted via a shared timer
  stack),
* sample ``buffered_count()`` after every punctuation into per-operator
  and pipeline-wide occupancy timelines, and
* drive the :class:`~repro.observability.tracer.PunctuationTracer`.

Nothing is installed until ``attach`` is called: an un-instrumented
pipeline runs the unmodified class methods, so disabled metrics cost
zero — the property ``benchmarks/bench_operator_micro.py --check``
asserts structurally.
"""

from __future__ import annotations

from time import perf_counter

from repro.observability.metrics import OperatorMetrics
from repro.observability.snapshot import PipelineSnapshot
from repro.observability.tracer import PunctuationTracer

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Collects :class:`OperatorMetrics` for every attached operator.

    Parameters
    ----------
    trace:
        Record punctuation traces (default on).  Turning it off removes
        the per-punctuation span bookkeeping but keeps all counters.
    timeline:
        Keep full per-operator occupancy timelines (default on); off
        retains only peaks and sample counts, bounding memory on very
        long runs.
    """

    def __init__(self, trace=True, timeline=True):
        self.tracer = PunctuationTracer() if trace else None
        self.timeline = timeline
        self.operators = {}      # label -> OperatorMetrics
        #: pipeline-wide ``(punctuation_timestamp, buffered_events)``
        #: samples, one per ingress punctuation.
        self.occupancy_timeline = []
        self.occupancy_peak = 0
        self._ops = {}           # label -> live operator
        self._attached = []      # (operator, originals) for detach
        self._stack = []         # exclusive-time accounting
        self._all_ops = []       # every instrumented op, for occupancy sums

    # -- lifecycle ---------------------------------------------------------

    def attach(self, pipeline) -> "MetricsRegistry":
        """Instrument every operator of a materialized pipeline.

        Routing operators' ``out_ports`` (lateness partition paths, shard
        router outlets) are instrumented as ``<label>/out[i]`` so routed
        counts are observable per path.  Returns ``self`` for chaining.
        """
        sources = set(map(id, pipeline.sources))
        for label, op in pipeline.operator_labels():
            self._instrument(op, label, is_source=id(op) in sources)
            for index, port in enumerate(getattr(op, "out_ports", ()) or ()):
                self._instrument(port, f"{label}/out[{index}]",
                                 is_source=False)
        return self

    def detach(self):
        """Remove all installed wrappers, restoring the class methods."""
        for op, originals in self._attached:
            op.uninstrument(originals)
        self._attached.clear()

    def reset(self):
        """Detach and forget everything collected.

        Supervised execution re-attaches one registry to every restart
        attempt's fresh pipeline; resetting first keeps the final counts
        describing the logical (replayed) run rather than summing the
        attempts.
        """
        self.detach()
        self.operators.clear()
        self._ops.clear()
        self._all_ops.clear()
        self._stack.clear()
        self.occupancy_timeline.clear()
        self.occupancy_peak = 0
        if self.tracer is not None:
            self.tracer = PunctuationTracer()

    # -- instrumentation ---------------------------------------------------

    def _instrument(self, op, label, is_source):
        metrics = self.operators.get(label)
        if metrics is None:
            metrics = OperatorMetrics(label)
            self.operators[label] = metrics
            self._ops[label] = op
        self._all_ops.append(op)
        wrappers = {
            "on_event": self._wrap_event(metrics, event_arg=0),
            "on_punctuation": self._wrap_punctuation(
                metrics, op, is_source, punct_arg=0
            ),
            "on_flush": self._wrap_flush(metrics, op),
            "emit_event": self._wrap_emit_event(metrics),
            "emit_punctuation": self._wrap_emit_punctuation(metrics),
        }
        if hasattr(op, "on_port_event"):
            wrappers["on_port_event"] = self._wrap_event(metrics, event_arg=1)
            wrappers["on_port_punctuation"] = self._wrap_punctuation(
                metrics, op, False, punct_arg=1
            )
            wrappers["on_port_flush"] = self._wrap_flush(metrics, op)
        self._attached.append((op, op.instrument(wrappers)))

    def _wrap_event(self, metrics, event_arg):
        stack = self._stack

        def wrap(bound):
            def on_event(*args):
                metrics.events_in += 1
                stack.append(0.0)
                start = perf_counter()
                try:
                    bound(*args)
                finally:
                    elapsed = perf_counter() - start
                    metrics.event_time += elapsed - stack.pop()
                    if stack:
                        stack[-1] += elapsed
            return on_event
        return wrap

    def _wrap_punctuation(self, metrics, op, is_source, punct_arg):
        stack = self._stack
        tracer = self.tracer
        registry = self

        def wrap(bound):
            def on_punctuation(*args):
                punctuation = args[punct_arg]
                metrics.punctuations_in += 1
                began = (
                    tracer is not None and is_source
                    and tracer.begin(punctuation)
                )
                stack.append(0.0)
                start = perf_counter()
                try:
                    bound(*args)
                finally:
                    elapsed = perf_counter() - start
                    exclusive = elapsed - stack.pop()
                    metrics.punctuation_time += exclusive
                    if stack:
                        stack[-1] += elapsed
                    metrics.note_occupancy(
                        punctuation.timestamp, op.buffered_count(),
                        registry.timeline,
                    )
                    if tracer is not None:
                        tracer.span(metrics.label, exclusive)
                        if began:
                            tracer.finish(elapsed)
                    if is_source:
                        registry._sample_pipeline(punctuation.timestamp)
            return on_punctuation
        return wrap

    def _wrap_flush(self, metrics, op):
        stack = self._stack

        def wrap(bound):
            def on_flush(*args):
                metrics.flushes += 1
                stack.append(0.0)
                start = perf_counter()
                try:
                    bound(*args)
                finally:
                    elapsed = perf_counter() - start
                    metrics.flush_time += elapsed - stack.pop()
                    if stack:
                        stack[-1] += elapsed
            return on_flush
        return wrap

    def _wrap_emit_event(self, metrics):
        def wrap(bound):
            def emit_event(event):
                metrics.events_out += 1
                bound(event)
            return emit_event
        return wrap

    def _wrap_emit_punctuation(self, metrics):
        tracer = self.tracer

        def wrap(bound):
            def emit_punctuation(punctuation):
                metrics.punctuations_out += 1
                if tracer is not None:
                    tracer.stamp(punctuation)
                bound(punctuation)
            return emit_punctuation
        return wrap

    def _sample_pipeline(self, timestamp):
        """Pipeline-wide occupancy sample, taken once per ingress
        punctuation after the whole propagation unwinds."""
        buffered = sum(op.buffered_count() for op in self._all_ops)
        if buffered > self.occupancy_peak:
            self.occupancy_peak = buffered
        if self.timeline:
            self.occupancy_timeline.append((timestamp, buffered))

    # -- export ------------------------------------------------------------

    def snapshot(self, memory=None, meta=None, resilience=None,
                 parallel=None, spill=None, serve=None) -> PipelineSnapshot:
        """Aggregate everything collected into one structured export.

        ``memory`` is an optional
        :class:`~repro.framework.memory.MemoryMeter` whose byte-level peak
        joins the document; ``meta`` is free-form run context (dataset,
        stream length, wall time, …); ``resilience`` is a supervised
        run's fault/recovery summary
        (:meth:`~repro.resilience.supervisor.SupervisedResult
        .resilience_doc`); ``parallel`` is a parallel run's coordinator
        accounting (``ParallelResult.parallel`` — per-shard worker
        sorter stats ride under its ``shards`` key, since worker-side
        operators cannot be instrumented across the process boundary).
        """
        operators = []
        for label, metrics in self.operators.items():
            doc = metrics.as_dict()
            op = self._ops[label]
            dropped = getattr(op, "dropped", None)
            if isinstance(dropped, int):
                doc["dropped"] = dropped
            sorter = getattr(op, "sorter", None)
            stats = getattr(sorter, "stats", None)
            if stats is not None:
                doc["sorter"] = stats.as_dict()
            late = getattr(sorter, "late", None)
            if late is not None:
                doc["late"] = {
                    "policy": late.policy.value,
                    "dropped": late.dropped,
                    "adjusted": late.adjusted,
                    "quarantined": late.quarantined,
                }
            spill_doc = getattr(sorter, "spill_doc", None)
            if callable(spill_doc):
                doc["spill"] = spill_doc()
            operators.append(doc)
        occupancy = {
            "peak": self.occupancy_peak,
            "samples": len(self.occupancy_timeline),
            "timeline": [list(s) for s in self.occupancy_timeline],
        }
        memory_doc = None
        if memory is not None:
            memory_doc = {
                "peak_events": memory.peak_events,
                "peak_bytes": memory.peak_bytes,
                "peak_mb": memory.peak_mb,
                "samples": memory.samples,
            }
        punctuation = self.tracer.summary() if self.tracer else None
        return PipelineSnapshot(
            operators, punctuation=punctuation, occupancy=occupancy,
            memory=memory_doc, meta=meta, resilience=resilience,
            parallel=parallel, spill=spill, serve=serve,
        )

    def __repr__(self):
        return (
            f"MetricsRegistry(operators={len(self.operators)}, "
            f"attached={len(self._attached)})"
        )
