"""Pipeline observability: per-operator metrics, punctuation tracing,
and structured export.

A non-invasive instrumentation layer for any materialized query graph:

>>> registry = MetricsRegistry()
>>> collector = stream.collect(metrics=registry)   # doctest: +SKIP
>>> registry.snapshot().to_json()                  # doctest: +SKIP

Hooks are installed per operator *instance* only when a registry is
attached; with no registry the engine runs the unmodified class methods,
so disabled observability costs nothing (verified by
``benchmarks/bench_operator_micro.py --check``).  See
``docs/observability.md`` for the hook architecture, trace-id semantics,
and the JSON export schema.
"""

from repro.observability.metrics import OperatorMetrics, latency_quantiles
from repro.observability.registry import MetricsRegistry
from repro.observability.snapshot import SCHEMA, PipelineSnapshot
from repro.observability.tracer import PunctuationTracer

__all__ = [
    "MetricsRegistry",
    "OperatorMetrics",
    "PipelineSnapshot",
    "PunctuationTracer",
    "SCHEMA",
    "latency_quantiles",
]
