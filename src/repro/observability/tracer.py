"""Punctuation tracing: span timings for every progress marker.

Execution in this engine is synchronous push: when a punctuation enters a
source operator, *everything* it causes — head cuts in sorters, window
closes, aggregate emissions, union drains, sink deliveries — happens
inside that one call before it returns.  The tracer exploits this: a trace
begins when a punctuation crosses a pipeline source and ends when the call
unwinds, so the root call's wall-clock *is* the end-to-end
punctuation-to-emit latency, and the exclusive time each operator spends
handling the punctuation is that operator's span.

Trace ids are stamped onto the punctuation objects themselves
(:attr:`repro.engine.event.Punctuation.trace_id`); punctuations *created*
mid-graph while a trace is active (union's merged watermark, windows'
aligned promises) inherit the active id at emission, so a downstream
debugger can correlate derived markers with the ingress marker that caused
them.
"""

from __future__ import annotations

from repro.observability.metrics import latency_quantiles

__all__ = ["PunctuationTracer"]


class PunctuationTracer:
    """Records one trace per ingress punctuation.

    Attributes
    ----------
    completed:
        ``(trace_id, punctuation_timestamp, end_to_end_seconds)`` per
        finished trace, in completion order.
    spans:
        ``label -> [exclusive_seconds, ...]`` — per-operator punctuation
        handling times, aggregated across traces (the per-operator
        latency histogram source).
    """

    def __init__(self):
        self.completed = []
        self.spans = {}
        self._active_id = None
        self._active_timestamp = None
        self._next_id = 0

    @property
    def active_id(self):
        """Trace id of the punctuation currently propagating, or None."""
        return self._active_id

    def begin(self, punctuation) -> bool:
        """Open a trace for a punctuation entering a source.

        Returns ``True`` when this call opened the trace (the caller must
        then :meth:`finish` it); nested/re-entrant begins are ignored.
        """
        if self._active_id is not None:
            return False
        self._active_id = self._next_id
        self._next_id += 1
        self._active_timestamp = punctuation.timestamp
        if punctuation.trace_id is None:
            punctuation.trace_id = self._active_id
        return True

    def stamp(self, punctuation):
        """Give a mid-graph punctuation the active trace id (if any)."""
        if self._active_id is not None and punctuation.trace_id is None:
            punctuation.trace_id = self._active_id

    def span(self, label, exclusive_seconds):
        """Record one operator's exclusive handling time for the active
        trace; no-op outside a trace (e.g. flush-driven drains)."""
        if self._active_id is None:
            return
        self.spans.setdefault(label, []).append(exclusive_seconds)

    def finish(self, total_seconds):
        """Close the active trace with its end-to-end wall-clock time."""
        self.completed.append(
            (self._active_id, self._active_timestamp, total_seconds)
        )
        self._active_id = None
        self._active_timestamp = None

    @property
    def end_to_end(self):
        """End-to-end latency samples (seconds), one per trace."""
        return [total for _, _, total in self.completed]

    def summary(self) -> dict:
        """JSON-ready trace statistics."""
        return {
            "traces": len(self.completed),
            "end_to_end_s": latency_quantiles(self.end_to_end),
            "per_operator_s": {
                label: latency_quantiles(samples)
                for label, samples in self.spans.items()
            },
            "series": [
                {"trace_id": tid, "timestamp": ts, "seconds": total}
                for tid, ts, total in self.completed
            ],
        }

    def __repr__(self):
        return (
            f"PunctuationTracer(traces={len(self.completed)}, "
            f"operators={len(self.spans)})"
        )
