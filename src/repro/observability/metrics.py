"""Per-operator metrics collected by the observability layer.

One :class:`OperatorMetrics` bundle exists per instrumented operator; the
:class:`~repro.observability.registry.MetricsRegistry` fills it through the
per-instance hooks installed via
:meth:`repro.engine.operators.base.Operator.instrument`.  Everything here is
plain counters and float accumulators — cheap enough to update on every
signal once metrics are *enabled*, and entirely absent from the hot path
when they are not.
"""

from __future__ import annotations

__all__ = ["OperatorMetrics", "latency_quantiles"]


def latency_quantiles(values) -> dict:
    """Summary quantiles of a latency sample (seconds or any unit).

    Returns ``count``, ``mean``, ``p50``, ``p90``, ``p99`` and ``max``;
    an empty sample yields all-zero statistics.
    """
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    last = len(ordered) - 1

    def q(p):
        return ordered[min(int(p * len(ordered)), last)]

    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": q(0.50),
        "p90": q(0.90),
        "p99": q(0.99),
        "max": ordered[-1],
    }


class OperatorMetrics:
    """Counters and timings for one live operator.

    Attributes
    ----------
    events_in / events_out:
        Data events received / emitted downstream.
    punctuations_in / punctuations_out:
        Progress markers received / emitted.
    flushes:
        End-of-stream signals received.
    event_time / punctuation_time / flush_time:
        *Exclusive* wall-clock seconds spent inside each signal handler —
        time spent in downstream operators (reached synchronously through
        ``emit_*``) is attributed to those operators, not this one.
    occupancy_peak:
        High-water mark of ``buffered_count()``, sampled after every
        punctuation (and after flush).
    occupancy_timeline:
        ``(punctuation_timestamp, buffered_events)`` samples, one per
        punctuation processed — the per-operator Figure 10 series.
    """

    __slots__ = (
        "label",
        "events_in", "events_out",
        "punctuations_in", "punctuations_out",
        "flushes",
        "event_time", "punctuation_time", "flush_time",
        "occupancy_peak", "occupancy_samples", "occupancy_timeline",
    )

    def __init__(self, label):
        self.label = label
        self.events_in = 0
        self.events_out = 0
        self.punctuations_in = 0
        self.punctuations_out = 0
        self.flushes = 0
        self.event_time = 0.0
        self.punctuation_time = 0.0
        self.flush_time = 0.0
        self.occupancy_peak = 0
        self.occupancy_samples = 0
        self.occupancy_timeline = []

    def note_occupancy(self, timestamp, buffered, keep_timeline=True):
        """Record a buffered-occupancy sample (one per punctuation)."""
        self.occupancy_samples += 1
        if buffered > self.occupancy_peak:
            self.occupancy_peak = buffered
        if keep_timeline:
            self.occupancy_timeline.append((timestamp, buffered))

    @property
    def busy_seconds(self) -> float:
        """Total exclusive wall-clock time across all three signals."""
        return self.event_time + self.punctuation_time + self.flush_time

    def as_dict(self) -> dict:
        """JSON-ready snapshot of this operator's metrics."""
        return {
            "name": self.label,
            "events": {"in": self.events_in, "out": self.events_out},
            "punctuations": {
                "in": self.punctuations_in,
                "out": self.punctuations_out,
            },
            "flushes": self.flushes,
            "busy_s": {
                "event": self.event_time,
                "punctuation": self.punctuation_time,
                "flush": self.flush_time,
                "total": self.busy_seconds,
            },
            "occupancy": {
                "peak": self.occupancy_peak,
                "samples": self.occupancy_samples,
                "timeline": [list(s) for s in self.occupancy_timeline],
            },
        }

    def __repr__(self):
        return (
            f"OperatorMetrics({self.label!r}, in={self.events_in}, "
            f"out={self.events_out}, busy={self.busy_seconds:.6f}s)"
        )
