"""Dataset registry with memoization for tests and benchmarks.

The paper evaluates on 20M-event streams; pure-Python runs scale the
default down (see DESIGN.md).  ``load_dataset`` hands out cached instances
so a benchmark session generates each stream once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.androidlog import generate_androidlog
from repro.workloads.base import Dataset
from repro.workloads.cloudlog import generate_cloudlog
from repro.workloads.synthetic import generate_synthetic

__all__ = ["DATASET_NAMES", "load_dataset", "DEFAULT_N"]

#: Default stream length for experiment runs (paper: 20_000_000).
DEFAULT_N = 200_000

DATASET_NAMES = ("synthetic", "cloudlog", "androidlog")


@lru_cache(maxsize=32)
def _load(name: str, n: int, seed: int, extra: tuple) -> Dataset:
    kwargs = dict(extra)
    if name == "synthetic":
        return generate_synthetic(n, seed=seed, **kwargs)
    if name == "cloudlog":
        return generate_cloudlog(n, seed=seed, **kwargs)
    if name == "androidlog":
        return generate_androidlog(n, seed=seed, **kwargs)
    raise ValueError(
        f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
    )


def load_dataset(name: str, n: int = DEFAULT_N, seed: int = 0,
                 **kwargs) -> Dataset:
    """Return a memoized dataset instance.

    Keyword arguments are forwarded to the generator (e.g.
    ``percent_disorder=30`` for the synthetic workload).  Callers must not
    mutate the returned dataset; use :meth:`Dataset.head` to derive.
    """
    return _load(name, n, seed, tuple(sorted(kwargs.items())))
