"""Discrete-event simulation of the log-ingestion substrate.

The vectorized generators (`cloudlog.py`, `androidlog.py`) produce the
right *statistics* cheaply; this module produces the same streams from
an explicit causal model — actors exchanging messages on a simulated
clock — so the generating process itself is inspectable and extensible
(add a flaky router, change the retry policy, model a backlogged
collector, …).

Actors:

* :class:`ServerActor` — emits events at a jittered rate, ships each
  immediately with per-message network delay; a failure schedule makes
  it buffer during outages and flush everything at recovery (the
  CloudLog process of §II).
* :class:`PhoneActor` — records events continuously, uploads the whole
  backlog at charge times (the AndroidLog process of §II).

The collector role is played by the simulation itself: ``deliver``
records each arrival and ``collected_stream`` materializes the
out-of-order log in arrival order.

``simulate_cloudlog`` / ``simulate_androidlog`` wire these up and return
ordinary :class:`~repro.workloads.base.Dataset` objects, validated in
tests against the same Table I regime checks as the fast generators.
"""

from __future__ import annotations

import heapq
import random

from repro.workloads.base import Dataset

__all__ = [
    "EventDrivenSimulation",
    "ServerActor",
    "PhoneActor",
    "simulate_cloudlog",
    "simulate_androidlog",
]


class EventDrivenSimulation:
    """A minimal discrete-event engine: a heap of (time, seq, action).

    Actions are zero-argument callables that may schedule further
    actions.  Determinism comes from the (time, seq) ordering and a
    seeded RNG owned by the simulation.
    """

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self.now = 0.0
        self._queue = []
        self._seq = 0
        self.deliveries = []  # (arrival_time, event_time, source_id)

    def schedule(self, when, action):
        """Run ``action`` at simulated time ``when`` (>= now)."""
        heapq.heappush(self._queue, (when, self._seq, action))
        self._seq += 1

    def deliver(self, arrival_time, event_time, source_id):
        """Record one event reaching the collector."""
        self.deliveries.append((arrival_time, event_time, source_id))

    def run(self, until=None):
        """Process scheduled actions in time order."""
        while self._queue:
            when, _, action = heapq.heappop(self._queue)
            if until is not None and when > until:
                break
            self.now = when
            action()

    def collected_stream(self):
        """Event times in collector-arrival order (the disordered log)."""
        ordered = sorted(
            self.deliveries, key=lambda d: (d[0], d[2], d[1])
        )
        return [int(event_time) for _, event_time, _ in ordered]


class ServerActor:
    """A cloud application server: emit → send immediately, unless down."""

    def __init__(self, sim, server_id, rate_interval, base_delay,
                 jitter, outages=()):
        self.sim = sim
        self.server_id = server_id
        self.rate_interval = rate_interval
        self.base_delay = base_delay
        self.jitter = jitter
        #: sorted (start, end) outage windows.
        self.outages = sorted(outages)
        self._held = []

    def start(self, horizon):
        self.horizon = horizon
        self.sim.schedule(self._next_gap(0.0), self._emit)
        for _, end in self.outages:
            self.sim.schedule(end, self._recover)

    def _next_gap(self, base):
        return base + self.sim.rng.expovariate(1.0 / self.rate_interval)

    def _down_at(self, when):
        return any(start <= when < end for start, end in self.outages)

    def _emit(self):
        now = self.sim.now
        if now < self.horizon:
            event_time = now
            if self._down_at(now):
                self._held.append(event_time)
            else:
                self._send(event_time)
            self.sim.schedule(self._next_gap(now), self._emit)

    def _send(self, event_time):
        delay = self.base_delay + abs(
            self.sim.rng.gauss(0.0, self.jitter)
        )
        self.sim.deliver(self.sim.now + delay, event_time, self.server_id)

    def _recover(self):
        held, self._held = self._held, []
        for event_time in held:
            self._send(event_time)


class PhoneActor:
    """A phone: record continuously, upload the backlog when charging."""

    def __init__(self, sim, phone_id, rate_interval, charge_times):
        self.sim = sim
        self.phone_id = phone_id
        self.rate_interval = rate_interval
        self.charge_times = sorted(charge_times)
        self._backlog = []

    def start(self, horizon):
        self.horizon = horizon
        self.sim.schedule(
            self.sim.rng.expovariate(1.0 / self.rate_interval), self._record
        )
        for when in self.charge_times:
            self.sim.schedule(when, self._upload)

    def _record(self):
        now = self.sim.now
        if now < self.horizon:
            self._backlog.append(now)
            self.sim.schedule(
                now + self.sim.rng.expovariate(1.0 / self.rate_interval),
                self._record,
            )

    def _upload(self):
        backlog, self._backlog = self._backlog, []
        # The batch arrives intact and in recorded order.
        for event_time in backlog:
            self.sim.deliver(self.sim.now, event_time, self.phone_id)


def _finalize(sim, name, horizon, params):
    """Flush stragglers, materialize a Dataset from the deliveries."""
    sim.run()
    times = sim.collected_stream()
    return Dataset(name=name, timestamps=times, params=params)


def simulate_cloudlog(n, n_servers=50, jitter_ms=4.0, delay_spread_ms=2000.0,
                      outage=(0.25, 0.6), seed=0) -> Dataset:
    """Causal CloudLog: ``n_servers`` emitting for a horizon of ~n ms.

    ``outage`` picks one victim server and the (start, end) fractions of
    the horizon it spends down, reproducing the Region-2 burst.
    """
    sim = EventDrivenSimulation(seed)
    horizon = float(n)
    rate_interval = horizon / (n / n_servers)  # ≈n events total
    victim = sim.rng.randrange(n_servers)
    for server_id in range(n_servers):
        outages = ()
        if server_id == victim and outage is not None:
            outages = ((horizon * outage[0], horizon * outage[1]),)
        ServerActor(
            sim, server_id, rate_interval,
            base_delay=sim.rng.uniform(0.0, delay_spread_ms),
            jitter=jitter_ms, outages=outages,
        ).start(horizon)
    return _finalize(sim, "cloudlog-sim", horizon, {
        "n": n, "n_servers": n_servers, "jitter_ms": jitter_ms,
        "delay_spread_ms": delay_spread_ms, "outage": outage, "seed": seed,
    })


def simulate_androidlog(n, n_phones=30, uploads_per_phone=8,
                        seed=0) -> Dataset:
    """Causal AndroidLog: phones uploading backlogs at charge times."""
    sim = EventDrivenSimulation(seed)
    horizon = float(n)
    rate_interval = horizon / (n / n_phones)
    for phone_id in range(n_phones):
        period = horizon / uploads_per_phone
        phase = sim.rng.uniform(0.0, period)
        charges = [phase + i * period for i in range(uploads_per_phone)]
        charges.append(horizon * 1.01)  # final sync so nothing is lost
        PhoneActor(sim, phone_id, rate_interval, charges).start(horizon)
    return _finalize(sim, "androidlog-sim", horizon, {
        "n": n, "n_phones": n_phones,
        "uploads_per_phone": uploads_per_phone, "seed": seed,
    })
