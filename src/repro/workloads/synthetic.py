"""The paper's synthetic out-of-order generator (Section VI-A).

    "It starts with a sorted dataset with increasing timestamps, and makes
    p% of events delayed by moving their timestamps backward, based on the
    absolute value of a sample from a normal distribution with mean 0 and
    standard deviation d."

Figures 7(b)/(c) sweep ``d`` over {1024, 256, 64, 16, 4} and ``p`` over
{100, 30, 10, 3, 1}%; Figure 8(a) uses (p=30%, d=64).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Dataset

__all__ = ["generate_synthetic"]


def generate_synthetic(n, percent_disorder=30.0, amount_disorder=64.0,
                       seed=0, spacing=1, n_keys=100) -> Dataset:
    """Build the paper's synthetic workload.

    Parameters
    ----------
    n:
        Number of events.
    percent_disorder:
        ``p`` — percentage (0..100) of events moved backward in time.
    amount_disorder:
        ``d`` — standard deviation of the normal delay distribution.
    seed:
        RNG seed; the stream is fully deterministic given the parameters.
    spacing:
        Event-time gap between consecutive in-order events.
    n_keys:
        Cardinality of the grouping-key column (Q2/Q3 group counts).
    """
    if not 0.0 <= percent_disorder <= 100.0:
        raise ValueError("percent_disorder must be within [0, 100]")
    if amount_disorder < 0:
        raise ValueError("amount_disorder must be non-negative")
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * spacing
    delayed = rng.random(n) < (percent_disorder / 100.0)
    shifts = np.abs(rng.normal(0.0, amount_disorder, size=n)).astype(np.int64)
    times = np.where(delayed, np.maximum(times - shifts, 0), times)
    keys = rng.integers(0, n_keys, size=n, dtype=np.int64)
    payload_cols = rng.integers(0, 2**31 - 1, size=(n, 4), dtype=np.int64)
    return Dataset(
        name="synthetic",
        timestamps=times.tolist(),
        payloads=[tuple(int(x) for x in row) for row in payload_cols],
        keys=keys.tolist(),
        params={
            "n": n,
            "percent_disorder": percent_disorder,
            "amount_disorder": amount_disorder,
            "seed": seed,
            "spacing": spacing,
        },
    )
