"""Workload simulators for the paper's datasets (see DESIGN.md §1.3)."""

from repro.workloads.androidlog import generate_androidlog
from repro.workloads.base import Dataset
from repro.workloads.cloudlog import generate_cloudlog
from repro.workloads.datasets import DATASET_NAMES, DEFAULT_N, load_dataset
from repro.workloads.io import load_dataset_csv, save_dataset_csv
from repro.workloads.simulation import (
    simulate_androidlog,
    simulate_cloudlog,
)
from repro.workloads.strings import (
    generate_androidlog_strings,
    generate_cloudlog_strings,
)
from repro.workloads.synthetic import generate_synthetic

__all__ = [
    "DATASET_NAMES",
    "DEFAULT_N",
    "Dataset",
    "generate_androidlog",
    "generate_androidlog_strings",
    "generate_cloudlog",
    "generate_cloudlog_strings",
    "generate_synthetic",
    "load_dataset",
    "load_dataset_csv",
    "save_dataset_csv",
    "simulate_androidlog",
    "simulate_cloudlog",
]
