"""String-keyed workload variants (service names, log levels).

The base CloudLog/AndroidLog simulators carry synthetic int keys; real
log analytics groups and filters on *names* — service identifiers like
``prod.cluster-03.svc.zone-1.host-00042`` with long shared prefixes, and
categorical payload strings like log levels.  These variants re-key the
same arrival simulations with such names, delivering them the way the
string stack expects:

* ``dataset.keys`` holds **int64 dictionary codes** of the per-event
  service name under an order-preserving
  :class:`~repro.core.strings.StringDictionary` (exposed as
  ``dataset.key_dictionary``), so every int-keyed engine — row,
  columnar, compiled, parallel, external — sorts and groups the names
  correctly without knowing strings exist;
* ``dataset.string_payloads`` holds the raw per-event strings as
  :class:`~repro.core.strings.StringColumn` payload columns (service
  name, then log level), which
  :meth:`~repro.engine.batch.EventBatch.from_dataset` attaches so the
  columnar/parallel paths carry the actual bytes end-to-end.

The service-name shape is deliberately prefix-heavy: a handful of
cluster/zone prefixes fan out into hundreds of hosts, so byte-wise key
comparisons share long prefixes — the regime where offset-value-coded
merges (:mod:`repro.core.strings`) beat naive comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.strings import StringColumn, StringDictionary
from repro.workloads.androidlog import generate_androidlog
from repro.workloads.base import Dataset
from repro.workloads.cloudlog import generate_cloudlog

__all__ = [
    "LOG_LEVELS",
    "cloudlog_service_names",
    "androidlog_package_names",
    "generate_cloudlog_strings",
    "generate_androidlog_strings",
]

LOG_LEVELS = (b"DEBUG", b"ERROR", b"FATAL", b"INFO", b"WARN")


def cloudlog_service_names(n_services):
    """Deterministic service-name universe with long shared prefixes."""
    return [
        (
            f"prod.cluster-{i % 7:02d}.svc.zone-{i % 3}."
            f"host-{i:05d}"
        ).encode()
        for i in range(n_services)
    ]


def androidlog_package_names(n_apps):
    """Deterministic Android package-name universe."""
    return [
        f"com.vendor{i % 11:02d}.app{i % 29:02d}.build-{i:05d}".encode()
        for i in range(n_apps)
    ]


def _string_variant(dataset, names, suffix):
    """Re-key ``dataset`` onto ``names`` and attach string payloads."""
    dictionary = StringDictionary(names)
    per_event = [names[int(k) % len(names)] for k in dataset.keys]
    codes = dictionary.encode(per_event)
    rng = np.random.default_rng(
        int(dataset.params.get("seed", 0)) + 0x5757
    )
    levels = [
        LOG_LEVELS[i] for i in rng.integers(0, len(LOG_LEVELS),
                                            size=len(dataset))
    ]
    out = Dataset(
        name=f"{dataset.name}-{suffix}",
        timestamps=dataset.timestamps,
        payloads=dataset.payloads,
        keys=codes.tolist(),
        params={**dataset.params, "string_keys": True},
    )
    out.key_dictionary = dictionary
    out.string_payloads = [
        StringColumn.from_values(per_event),
        StringColumn.from_values(levels),
    ]
    return out


def generate_cloudlog_strings(n, n_services=387, seed=0, **kwargs):
    """CloudLog with service-name keys and log-level string payloads.

    Same arrival process as :func:`~repro.workloads.generate_cloudlog`
    (the key column is re-used to pick each event's service), plus the
    string attachments described in the module docstring.
    """
    base = generate_cloudlog(
        n, n_servers=n_services, seed=seed, n_keys=n_services, **kwargs
    )
    return _string_variant(
        base, cloudlog_service_names(n_services), "strings"
    )


def generate_androidlog_strings(n, n_apps=227, seed=0, **kwargs):
    """AndroidLog with package-name keys and log-level string payloads."""
    base = generate_androidlog(
        n, n_phones=n_apps, seed=seed, n_keys=n_apps, **kwargs
    )
    return _string_variant(
        base, androidlog_package_names(n_apps), "strings"
    )
