"""Simulated CloudLog workload.

The paper's CloudLog dataset — a proprietary log of a large Microsoft cloud
application — is unavailable, so this module simulates its generating
process as Section II describes it: many distributed application servers
emit events in order and send them immediately to a central collector;
per-server network jitter scrambles arrivals at a fine granularity, and
occasional server failures hold a server's events back and flush them in a
burst, far out of position.

Calibration targets (Table I, qualitatively): natural runs averaging ≈2.7
events; interleaved runs on the order of the server count (a few hundred);
a maximum inversion distance that is a large fraction of the stream ("the
most delayed events need to be moved over 13.6 million events" of 20M) —
i.e. *well-ordered at a coarse granularity, chaotic at a fine granularity*.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Dataset

__all__ = ["cloudlog_arrays", "generate_cloudlog"]


def cloudlog_arrays(n, n_servers=387, jitter_ms=4.0,
                    delay_spread_ms=4000.0, n_bursts=3,
                    burst_fraction=0.55, seed=0, n_keys=100):
    """The CloudLog arrival simulation as raw numpy arrays.

    Returns ``(timestamps, keys, rng)`` — int64 event times in arrival
    order, the parallel grouping-key column, and the generator's RNG
    positioned exactly where :func:`generate_cloudlog` draws payloads.
    Large-scale benchmarks use this directly: it sidesteps the
    per-event Python objects a :class:`Dataset` materializes, which
    dominate generation cost beyond a few million events.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    rng = np.random.default_rng(seed)
    event_time = np.arange(n, dtype=np.int64)  # one event per ms, globally
    server = rng.integers(0, n_servers, size=n)
    base_delay = rng.uniform(0.0, delay_spread_ms, size=n_servers)
    jitter = np.abs(rng.normal(0.0, jitter_ms, size=n))
    arrival = event_time + base_delay[server] + jitter

    # Failure bursts: a server goes dark for a window; everything it would
    # have sent during the window arrives right after recovery.
    fraction = burst_fraction
    for _ in range(n_bursts):
        victim = rng.integers(0, n_servers)
        length = max(int(n * fraction), 1)
        start = int(rng.integers(0, max(n - length, 1)))
        end = start + length
        held = (server == victim) & (event_time >= start) & (event_time < end)
        arrival[held] = end + rng.uniform(0.0, jitter_ms, size=int(held.sum()))
        fraction /= 3.0

    order = np.argsort(arrival, kind="stable")
    times = event_time[order]
    keys = rng.integers(0, n_keys, size=n, dtype=np.int64)[order]
    return times, keys, rng


def generate_cloudlog(n, n_servers=387, jitter_ms=4.0, delay_spread_ms=4000.0,
                      n_bursts=3, burst_fraction=0.55, seed=0,
                      n_keys=100) -> Dataset:
    """Simulate the CloudLog collector stream.

    Parameters
    ----------
    n:
        Number of events; event times tick one per millisecond.
    n_servers:
        Distributed application servers (the paper's dataset shows 387
        interleaved runs, so the default mirrors that scale).
    jitter_ms:
        Std-dev of per-event network jitter; a few milliseconds against a
        1 kHz aggregate event rate yields the tiny natural runs of Table I.
    delay_spread_ms:
        Range of persistent per-server base latency.  Servers at distinct
        base latencies form mutually offset lanes in the collector stream,
        which is what drives the Interleaved measure toward the server
        count (387 in the original dataset).
    n_bursts:
        Number of failure episodes.  Each picks one server and an outage
        window; the server's events within the window all arrive together
        when it recovers.
    burst_fraction:
        Length of the *largest* outage as a fraction of the stream; later
        bursts are geometrically shorter.  Controls the Distance measure.
    seed:
        RNG seed.
    n_keys:
        Cardinality of the grouping-key column.
    """
    times, keys, rng = cloudlog_arrays(
        n, n_servers=n_servers, jitter_ms=jitter_ms,
        delay_spread_ms=delay_spread_ms, n_bursts=n_bursts,
        burst_fraction=burst_fraction, seed=seed, n_keys=n_keys,
    )
    payload_cols = rng.integers(0, 2**31 - 1, size=(n, 4), dtype=np.int64)
    return Dataset(
        name="cloudlog",
        timestamps=times.tolist(),
        payloads=[tuple(int(x) for x in row) for row in payload_cols],
        keys=keys.tolist(),
        params={
            "n": n,
            "n_servers": n_servers,
            "jitter_ms": jitter_ms,
            "n_bursts": n_bursts,
            "burst_fraction": burst_fraction,
            "seed": seed,
        },
    )
