"""Shared dataset container for workload simulators.

A :class:`Dataset` is a stream materialized in *processing-time order*: the
i-th entry is the i-th event to reach the engine, carrying its (possibly
much earlier) event time plus the four-integer payload the paper's
evaluation uses.  Sorting benchmarks consume the raw timestamp list; engine
benchmarks consume :meth:`Dataset.events`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.event import Event

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """An out-of-order stream in arrival order.

    Attributes
    ----------
    name:
        Workload name (``"synthetic"``, ``"cloudlog"``, ``"androidlog"``).
    timestamps:
        Event times, indexed by arrival position.
    payloads:
        Parallel list of 4-int payload tuples; generated lazily when the
        simulator did not supply one.
    keys:
        Parallel list of 32-bit grouping keys (e.g. user or ad ids).
    params:
        The generator parameters, for provenance in reports.
    """

    name: str
    timestamps: list
    payloads: list = field(default=None, repr=False)
    keys: list = field(default=None, repr=False)
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        n = len(self.timestamps)
        if self.payloads is None:
            # Deterministic cheap payloads: derived from arrival index.
            self.payloads = [
                (i & 0xFFFF, (i * 31) & 0xFFFF, (i * 17) & 0xFF, i & 0xFF)
                for i in range(n)
            ]
        if self.keys is None:
            self.keys = [i % 100 for i in range(n)]
        if len(self.payloads) != n or len(self.keys) != n:
            raise ValueError("timestamps, payloads and keys must be parallel")

    def __len__(self) -> int:
        return len(self.timestamps)

    def events(self):
        """Yield :class:`repro.engine.event.Event` in arrival order."""
        for ts, key, payload in zip(self.timestamps, self.keys, self.payloads):
            yield Event(ts, ts + 1, key, payload)

    def head(self, n: int) -> "Dataset":
        """A prefix of the stream (same arrival order), for scaled runs."""
        return Dataset(
            name=self.name,
            timestamps=self.timestamps[:n],
            payloads=self.payloads[:n],
            keys=self.keys[:n],
            params={**self.params, "head": n},
        )

    @property
    def span(self):
        """(min, max) event time of the stream."""
        return min(self.timestamps), max(self.timestamps)
