"""Dataset persistence: CSV export/import.

Lets a generated workload be inspected with external tools, pinned for
regression runs, or replaced by a real log exported from another system
(the adoption path: drop in your own ``event_time,key,p0..p3`` rows and
every benchmark and example runs against your data).

Malformed files raise :class:`~repro.core.errors.DatasetFormatError`
carrying the path and 1-based row number; ``lenient=True`` skips (and
counts) bad rows instead, for hostile production feeds.
"""

from __future__ import annotations

import csv

from repro.core.errors import DatasetFormatError
from repro.workloads.base import Dataset

__all__ = ["save_dataset_csv", "load_dataset_csv"]

_HEADER_PREFIX = ["event_time", "key"]


def save_dataset_csv(dataset, path):
    """Write a dataset in arrival order as CSV with a header row."""
    n_fields = len(dataset.payloads[0]) if dataset.payloads else 0
    header = _HEADER_PREFIX + [f"p{i}" for i in range(n_fields)]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for ts, key, payload in zip(
            dataset.timestamps, dataset.keys, dataset.payloads
        ):
            writer.writerow([ts, key, *payload])
    return path


def load_dataset_csv(path, name=None, lenient=False):
    """Read a dataset written by :func:`save_dataset_csv` (or hand-made).

    The file must carry an ``event_time`` column; ``key`` and any number
    of payload columns are optional (missing ones are defaulted the same
    way :class:`~repro.workloads.base.Dataset` defaults them).

    A row that fails to parse raises
    :class:`~repro.core.errors.DatasetFormatError` with the path and
    1-based row number (the header is row 1).  With ``lenient=True``
    bad rows are skipped instead and counted into the returned dataset's
    ``params["skipped_rows"]``.
    """
    timestamps = []
    keys = []
    payloads = []
    skipped = 0
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or header[0] != "event_time":
            raise DatasetFormatError(
                path,
                f"expected a header starting with 'event_time', "
                f"got {header!r}",
                row=1,
            )
        has_key = len(header) > 1 and header[1] == "key"
        payload_start = 2 if has_key else 1
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                timestamp = int(row[0])
                key = int(row[1]) if has_key else None
                payload = tuple(int(v) for v in row[payload_start:])
            except (ValueError, IndexError) as exc:
                if lenient:
                    skipped += 1
                    continue
                raise DatasetFormatError(
                    path, f"cannot parse row {row!r}: {exc}", row=row_number
                ) from exc
            timestamps.append(timestamp)
            if has_key:
                keys.append(key)
            payloads.append(payload)
    params = {"source": str(path)}
    if lenient:
        params["skipped_rows"] = skipped
    return Dataset(
        name=name or "csv",
        timestamps=timestamps,
        payloads=payloads if any(payloads) else None,
        keys=keys if has_key else None,
        params=params,
    )
