"""Simulated AndroidLog workload.

The paper's AndroidLog dataset comes from the Device Analyzer project
(University of Cambridge) and is not redistributable, so this module
simulates its generating process as Section II describes it: an app on each
phone records activities in order and uploads the accumulated batch when
the phone is attached to a charger, hours (or days) later.

Calibration targets (Table I, qualitatively): few natural runs (each upload
batch is one long in-order run — the 20M-event original has only 5,560),
interleaved runs bounded by the phone count (≈227), and inversions orders
of magnitude above CloudLog because entire batches arrive hours late —
i.e. *well-ordered at a fine granularity, chaotic at a coarse granularity*.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Dataset

__all__ = ["generate_androidlog"]


def generate_androidlog(n, n_phones=227, uploads_per_phone=16,
                        rare_uploader_fraction=0.25, rare_uploads=1,
                        seed=0, n_keys=100) -> Dataset:
    """Simulate the AndroidLog server-side stream.

    Parameters
    ----------
    n:
        Number of events; the simulated horizon is ``n`` milliseconds so the
        aggregate rate matches CloudLog's for comparable sweeps.
    n_phones:
        Participating phones (default mirrors the original's 227
        interleaved runs).
    uploads_per_phone:
        Charge-and-upload episodes per ordinary phone over the horizon;
        the total number of batches approximates the natural-run count.
    rare_uploader_fraction:
        Fraction of phones that charge only ``rare_uploads`` times over the
        whole horizon.  Their batches arrive a large fraction of the stream
        late, producing the days-late spikes of Figure 2(c) and driving the
        Inversions measure orders of magnitude above CloudLog's.
    seed:
        RNG seed.
    n_keys:
        Cardinality of the grouping-key column.
    """
    if n_phones < 1:
        raise ValueError("n_phones must be >= 1")
    if uploads_per_phone < 1 or rare_uploads < 1:
        raise ValueError("upload counts must be >= 1")
    if not 0.0 <= rare_uploader_fraction <= 1.0:
        raise ValueError("rare_uploader_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    horizon = n  # ms
    phone = rng.integers(0, n_phones, size=n)
    event_time = np.sort(rng.integers(0, horizon, size=n)).astype(np.int64)

    # Per-phone upload schedule: jittered periodic charging sessions, with a
    # heavy tail of phones that almost never charge.
    uploads = np.full(n_phones, uploads_per_phone, dtype=np.float64)
    rare = rng.random(n_phones) < rare_uploader_fraction
    uploads[rare] = rare_uploads
    period = horizon / uploads
    phase = rng.uniform(0.0, 1.0, size=n_phones) * period
    per_event_period = period[phone]
    session = np.floor(
        (event_time - phase[phone]) / per_event_period
    ).astype(np.int64) + 1
    upload_time = phase[phone] + session * per_event_period

    # Arrival order: by upload instant; within one phone's batch the upload
    # time is identical, so the index tiebreaker keeps events in recorded
    # (event-time) order — each batch is one long natural run.
    order = np.lexsort((np.arange(n), phone, upload_time))
    times = event_time[order]
    keys = rng.integers(0, n_keys, size=n, dtype=np.int64)[order]
    payload_cols = rng.integers(0, 2**31 - 1, size=(n, 4), dtype=np.int64)
    return Dataset(
        name="androidlog",
        timestamps=times.tolist(),
        payloads=[tuple(int(x) for x in row) for row in payload_cols],
        keys=keys.tolist(),
        params={
            "n": n,
            "n_phones": n_phones,
            "uploads_per_phone": uploads_per_phone,
            "seed": seed,
        },
    )
