"""Benchmark harnesses and report formatting."""

from repro.bench.ascii_chart import line_chart, sparkline

from repro.bench.harness import (
    stream_length,
    offline_throughput,
    online_throughput,
    pipeline_metrics,
    pipeline_throughput,
    sort_as_needed_speedup,
)
from repro.bench.reporting import (
    format_metrics_summary,
    format_table,
    markdown_table,
)

__all__ = [
    "stream_length",
    "format_metrics_summary",
    "format_table",
    "line_chart",
    "sparkline",
    "markdown_table",
    "offline_throughput",
    "online_throughput",
    "pipeline_metrics",
    "pipeline_throughput",
    "sort_as_needed_speedup",
]
