"""Measurement harnesses shared by the benchmark suite.

Each function runs one experimental cell from the paper's evaluation and
returns plain numbers (throughput in million events/second, speedups,
peak memory), so both the pytest-benchmark targets and the report
generators (`python -m benchmarks.report`) share one code path.

Scale note: the paper's runs use 20M-event streams on a C# engine; these
harnesses default to smaller N (see ``stream_length``) because the substrate is
pure Python.  Shapes, ratios and crossovers are the reproduction target,
not absolute numbers (DESIGN.md §1.3).
"""

from __future__ import annotations

import os
import time

from repro.engine.disordered import DisorderedStreamable
from repro.engine.ingress import ingress_timestamps
from repro.sorting.registry import OFFLINE_SORTS, make_online_sorter

__all__ = [
    "stream_length",
    "offline_throughput",
    "online_throughput",
    "pipeline_throughput",
    "pipeline_metrics",
    "sort_as_needed_speedup",
]


def stream_length(default=100_000) -> int:
    """Benchmark stream length; override with REPRO_BENCH_N."""
    return int(os.environ.get("REPRO_BENCH_N", default))


def offline_throughput(name, timestamps) -> float:
    """Sort all timestamps with one offline algorithm; return M events/s."""
    sort = OFFLINE_SORTS[name]
    start = time.perf_counter()
    sort(timestamps)
    elapsed = time.perf_counter() - start
    return len(timestamps) / elapsed / 1e6


def online_throughput(name, timestamps, frequency, reorder_latency) -> float:
    """Drive one online sorter with punctuated ingress; return M events/s.

    ``frequency`` is the Figure 8 x-axis (events between punctuations);
    ``reorder_latency`` is tuned per dataset so that a majority of late
    events are tolerated (Section VI-B2).
    """
    sorter = make_online_sorter(name)
    insert = sorter.insert
    punctuate = sorter.on_punctuation
    start = time.perf_counter()
    for tag, value in ingress_timestamps(timestamps, frequency,
                                         reorder_latency):
        if tag == "event":
            insert(value)
        else:
            punctuate(value)
    sorter.flush()
    elapsed = time.perf_counter() - start
    return len(timestamps) / elapsed / 1e6


def pipeline_throughput(build_query, dataset, punctuation_frequency,
                        reorder_latency, repeats=1, metrics=None) -> float:
    """Run a full engine query over a dataset; return M events/s.

    ``build_query`` maps a fresh ``DisorderedStreamable`` to the final
    (ordered) streamable to collect.  ``repeats`` takes the best of
    several runs, which suppresses GC/OS noise when two pipelines are
    being compared for a speedup ratio.  ``metrics`` optionally attaches
    a :class:`~repro.observability.MetricsRegistry` to every repeat
    (remember instrumentation itself costs time — don't compare an
    instrumented throughput against a bare one).
    """
    best = float("inf")
    for _ in range(max(repeats, 1)):
        disordered = DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency, reorder_latency
        )
        stream = build_query(disordered)
        start = time.perf_counter()
        stream.collect(metrics=metrics)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return len(dataset) / best / 1e6


def pipeline_metrics(build_query, dataset, punctuation_frequency,
                     reorder_latency, registry=None):
    """The harness's ``--metrics`` mode: run one query fully instrumented.

    Attaches a :class:`~repro.observability.MetricsRegistry` (a fresh one
    unless ``registry`` is given) plus a
    :class:`~repro.framework.memory.MemoryMeter` and returns the
    resulting :class:`~repro.observability.PipelineSnapshot`, with run
    context (dataset, n, wall time, throughput) in its ``meta`` section.
    """
    from repro.framework.memory import MemoryMeter
    from repro.observability import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
    meter = MemoryMeter()
    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency, reorder_latency
    )
    stream = build_query(disordered)
    start = time.perf_counter()
    stream.collect(on_punctuation=meter.sample, metrics=registry)
    elapsed = time.perf_counter() - start
    return registry.snapshot(memory=meter, meta={
        "dataset": getattr(dataset, "name", "events"),
        "n": len(dataset),
        "punctuation_frequency": punctuation_frequency,
        "reorder_latency": reorder_latency,
        "elapsed_s": elapsed,
        "throughput_meps": len(dataset) / elapsed / 1e6,
    })


def sort_as_needed_speedup(push_down_ops, post_sort_ops, dataset,
                           punctuation_frequency=10_000,
                           reorder_latency=None, repeats=3) -> dict:
    """Figure 9 cell: time a query with the operator above vs below sort.

    ``push_down_ops`` and ``post_sort_ops`` apply the *same* logical
    operator chain to a ``DisorderedStreamable`` (before the sort) and a
    ``Streamable`` (after the sort) respectively; the returned dict has
    both throughputs and ``speedup = pushdown / baseline``.
    """
    if reorder_latency is None:
        low, high = dataset.span
        reorder_latency = high - low  # tolerate everything
    baseline = pipeline_throughput(
        lambda d: post_sort_ops(d.to_streamable()),
        dataset, punctuation_frequency, reorder_latency, repeats,
    )
    pushdown = pipeline_throughput(
        lambda d: push_down_ops(d).to_streamable(),
        dataset, punctuation_frequency, reorder_latency, repeats,
    )
    return {
        "baseline_meps": baseline,
        "pushdown_meps": pushdown,
        "speedup": pushdown / baseline,
    }
