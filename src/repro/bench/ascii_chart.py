"""Tiny ASCII chart rendering for benchmark reports.

Console-native visualizations for the report runner: a sparkline for
one series and a multi-row line chart for comparisons (Figure 5's
Patience-vs-Impatience curves render legibly in a terminal).
"""

from __future__ import annotations

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=60) -> str:
    """One-line block-character sparkline, resampled to ``width``."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [
            values[min(int(i * step), len(values) - 1)] for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _BLOCKS[0] * len(values)
    return "".join(
        _BLOCKS[min(int((v - low) / span * len(_BLOCKS)), len(_BLOCKS) - 1)]
        for v in values
    )


def line_chart(series, width=64, height=12) -> str:
    """Multi-series scatter chart on a character grid.

    ``series`` maps label -> list of (x, y) points; each series gets its
    own glyph.  Axes are annotated with the y range and x range.
    """
    glyphs = "*o+x#@"
    points = [
        (x, y) for rows in series.values() for x, y in rows
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1
    y_span = (y_high - y_low) or 1
    grid = [[" "] * width for _ in range(height)]
    for index, (label, rows) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in rows:
            col = min(int((x - x_low) / x_span * (width - 1)), width - 1)
            row = min(int((y - y_low) / y_span * (height - 1)), height - 1)
            grid[height - 1 - row][col] = glyph
    lines = [f"{y_high:>10,.0f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_low:>10,.0f} ┼" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_low:,.0f}".ljust(width // 2)
        + f"{x_high:,.0f}".rjust(width - width // 2)
    )
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
