"""Plain-text and Markdown table rendering for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "markdown_table"]


def _stringify(value):
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers, rows, title=None) -> str:
    """Fixed-width text table (for console reports)."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers, rows) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)
