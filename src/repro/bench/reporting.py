"""Plain-text and Markdown table rendering for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "markdown_table", "format_metrics_summary"]


def _stringify(value):
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers, rows, title=None) -> str:
    """Fixed-width text table (for console reports)."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers, rows) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)


def _us(seconds) -> str:
    """Microsecond rendering for latency cells."""
    return f"{seconds * 1e6:,.0f}"


def format_metrics_summary(snapshot) -> str:
    """Console summary of a :class:`~repro.observability.PipelineSnapshot`.

    Three sections: the per-operator counter table, punctuation latency
    (end-to-end quantiles plus a per-trace sparkline, then the slowest
    operators' span quantiles), and the pipeline's buffered-occupancy
    timeline as an ascii chart.
    """
    from repro.bench.ascii_chart import sparkline

    doc = snapshot.as_dict() if hasattr(snapshot, "as_dict") else snapshot
    lines = []

    rows = []
    for op in doc["operators"]:
        rows.append([
            op["name"],
            op["events"]["in"], op["events"]["out"],
            op["punctuations"]["in"], op["punctuations"]["out"],
            round(op["busy_s"]["total"] * 1e3, 3),
            op["occupancy"]["peak"],
            op.get("dropped", 0),
        ])
    lines.append(format_table(
        ["operator", "ev in", "ev out", "punct in", "punct out",
         "busy ms", "peak buf", "dropped"],
        rows, title="Per-operator metrics",
    ))

    punct = doc.get("punctuation")
    if punct and punct["traces"]:
        e2e = punct["end_to_end_s"]
        lines.append("")
        lines.append(
            f"Punctuation latency ({punct['traces']} traces, µs): "
            f"p50={_us(e2e['p50'])}  p90={_us(e2e['p90'])}  "
            f"p99={_us(e2e['p99'])}  max={_us(e2e['max'])}"
        )
        series = [entry["seconds"] for entry in punct.get("series", ())]
        if series:
            lines.append("  per-trace: " + sparkline(series))
        slowest = sorted(
            punct["per_operator_s"].items(),
            key=lambda item: item[1]["mean"],
            reverse=True,
        )[:6]
        lines.append(format_table(
            ["operator", "p50 µs", "p99 µs", "max µs"],
            [
                [name, _us(q["p50"]), _us(q["p99"]), _us(q["max"])]
                for name, q in slowest
            ],
            title="Slowest punctuation handlers",
        ))

    occupancy = doc.get("occupancy")
    if occupancy and occupancy["timeline"]:
        lines.append("")
        lines.append(
            f"Buffered occupancy (peak {occupancy['peak']} events over "
            f"{occupancy['samples']} punctuations):"
        )
        lines.append(
            "  " + sparkline([b for _, b in occupancy["timeline"]])
        )

    memory = doc.get("memory")
    if memory:
        lines.append(
            f"Peak working set: {memory['peak_mb']:.3f} MB "
            f"({memory['peak_events']} events)"
        )
    return "\n".join(lines)
