"""Always-on serving: multi-tenant standing queries over hostile ingress.

The serve layer turns the repro engine into a long-running service:
``repro serve`` hosts an asyncio ingress server (TCP line protocol +
HTTP/JSON-log framing), tenants register standing
:class:`~repro.engine.planner.QueryPlan`\\ s over their streams, and
results materialize incrementally at punctuation boundaries — robust by
construction against slowloris writers, malformed frames, duplicate
deliveries, wedged consumers, and ``kill -9`` (journaled ingress with
digest-verified exactly-once recovery).  See ``docs/serve.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.journal import TenantJournal, load_state, save_state
from repro.serve.protocol import parse_query_spec
from repro.serve.server import ReproServer
from repro.serve.standing import StandingQuery
from repro.serve.tenant import TenantRuntime

__all__ = [
    "ReproServer",
    "ServeClient",
    "StandingQuery",
    "TenantJournal",
    "TenantRuntime",
    "load_state",
    "parse_query_spec",
    "save_state",
]
