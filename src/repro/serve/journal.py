"""Durable per-tenant ingress journal and service state for ``repro serve``.

The service's crash-recovery contract is *replay, then verify*: every
accepted ingress element (event, punctuation, or guard-forced
punctuation) is appended to a per-tenant JSONL journal **before** it is
pushed into any standing-query pipeline.  A killed server restarts by
replaying each journal through freshly bound pipelines, which
regenerates every standing query's result stream from offset 0 — and the
regenerated prefix is checked against the running digest persisted in
the state file, so recovery is *verified* exactly-once rather than
assumed.

Journal line grammar (one JSON array per line)::

    ["e", offset, sync, other, key, payload]   accepted event
    ["p", offset, ts]                          client punctuation
    ["g", offset, ts]                          guard-forced punctuation
                                               (load shedding; replayed
                                               as a plain push — the
                                               guard is NOT re-consulted
                                               during replay)
    ["f", offset]                              END flush marker

Appends are ``write() + flush()`` per line: the payload reaches the OS
page cache, which survives ``kill -9`` of the process (the chaos soak
relies on exactly this).  A crash mid-append can leave one torn trailing
line; the loader tolerates — and truncates — a torn *final* line, but a
torn line mid-file means real corruption and raises.

The state file (``state.json``) is written atomically (tmp + rename) and
holds what replay cannot reconstruct: per-tenant counters and the
standing-query registry with each query's spec, delivered-element count,
and running SHA-256 digest over ``repr(element)`` lines.
"""

from __future__ import annotations

import json
import os

from repro.core.errors import ServeProtocolError
from repro.engine.event import Event, Punctuation
from repro.serve.protocol import _jsoned, _tupled

__all__ = ["TenantJournal", "load_state", "save_state"]


class TenantJournal:
    """Append-only JSONL journal for one tenant's accepted ingress.

    ``length`` is the journal's element count and doubles as the
    tenant's next expected ingress offset — the dedup line for
    exactly-once ingress.
    """

    def __init__(self, path):
        self.path = str(path)
        self.length = 0
        self._fh = None

    # -- recovery ----------------------------------------------------------

    def load(self):
        """Replay generator: yields ``(kind, element_or_None)`` tuples.

        ``kind`` is the journal line tag (``e``/``p``/``g``/``f``).  A
        torn final line (the only kind of damage a crashed append can
        cause) is truncated away; earlier damage raises
        :class:`ServeProtocolError`.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r+", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
            if lines and lines[-1] == "":
                lines.pop()
            for index, line in enumerate(lines):
                try:
                    doc = json.loads(line)
                    kind = doc[0]
                    if kind == "e":
                        element = Event(doc[2], doc[3], _tupled(doc[4]),
                                        _tupled(doc[5]))
                    elif kind in ("p", "g"):
                        element = Punctuation(doc[2])
                    elif kind == "f":
                        element = None
                    else:
                        raise ValueError(f"unknown tag {kind!r}")
                except (ValueError, IndexError, json.JSONDecodeError) as exc:
                    if index == len(lines) - 1:
                        # Torn trailing append from the crash: truncate.
                        fh.seek(0)
                        fh.truncate(sum(len(l) + 1 for l in lines[:index]))
                        break
                    raise ServeProtocolError(
                        f"{self.path}:{index + 1}: corrupt journal line "
                        f"({exc})"
                    ) from None
                self.length = doc[1] + 1
                yield kind, element

    # -- append ------------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append_event(self, event) -> int:
        line = json.dumps(["e", self.length, event.sync_time,
                           event.other_time, _jsoned(event.key),
                           _jsoned(event.payload)])
        return self._append(line)

    def append_punctuation(self, timestamp, forced=False) -> int:
        tag = "g" if forced else "p"
        return self._append(json.dumps([tag, self.length, timestamp]))

    def append_flush(self) -> int:
        return self._append(json.dumps(["f", self.length]))

    def _append(self, line) -> int:
        fh = self._handle()
        fh.write(line + "\n")
        fh.flush()
        offset = self.length
        self.length += 1
        return offset

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def save_state(data_dir, doc):
    """Atomically persist the service state document."""
    path = os.path.join(data_dir, "state.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_state(data_dir) -> dict:
    """Load the persisted state document, or ``{}`` on first boot."""
    path = os.path.join(data_dir, "state.json")
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
