"""The always-on ingress server behind ``repro serve``.

One asyncio event loop hosts two listeners — the TCP line protocol and
the HTTP/JSON-log surface — over a shared set of
:class:`~repro.serve.tenant.TenantRuntime` state machines.  The design
goal is *robustness by construction*: every hostile-traffic behaviour
has a bounded, counted, observable response rather than an exception
path.

* **Bounded ingress queues** — each tenant owns one
  ``asyncio.Queue(maxsize=queue_capacity)``; connection readers block in
  ``put()`` when it fills, which propagates as TCP backpressure to the
  producer.  A single consumer task per tenant serializes frame
  processing across every connection (TCP and HTTP) touching that
  tenant.
* **Slow-writer eviction** — reads are chunked through a per-connection
  buffer with a deadline; a peer that stalls mid-frame (slowloris) is
  evicted and counted, while an idle connection with *no* partial frame
  is left alone indefinitely.
* **Slow-consumer eviction** — result delivery drains with the same
  deadline; a subscriber that stops reading is evicted rather than
  allowed to wedge the tenant.
* **Quarantine, not crash** — malformed frames are dead-lettered through
  the shared :class:`~repro.resilience.quarantine.QuarantineLedger`
  (``net:<tenant>@<offset>`` source records) and ingress continues.
* **Graceful drain** — SIGTERM stops the listeners, drains every tenant
  queue (any queued punctuation still produces its results), delivers
  outstanding results, persists state, and exits 0.
* **Crash recovery** — ``kill -9`` loses nothing accepted: boot replays
  per-tenant journals through freshly bound standing pipelines and
  verifies the regenerated result prefix against the persisted digests
  (:class:`~repro.core.errors.ReplayDivergenceError` on divergence).

State is saved at punctuation boundaries (before the ``IOFF`` ack goes
out) and on evictions, so an acked round is always durable.
"""

from __future__ import annotations

import asyncio
import glob
import json
import os
import signal

from repro.core.errors import ServeProtocolError
from repro.framework.streamables import lag_stats
from repro.observability.snapshot import PipelineSnapshot
from repro.resilience.quarantine import QuarantineLedger
from repro.serve.journal import load_state, save_state
from repro.serve.protocol import decode_data_frame, result_line
from repro.serve.tenant import TenantRuntime

__all__ = ["ReproServer"]


class _SlowWriter(Exception):
    """A peer stalled mid-frame past the read deadline."""


class _Subscriber:
    """One connection's registration on one standing query."""

    __slots__ = ("writer", "qid", "pos", "eof_sent")

    def __init__(self, writer, qid, pos):
        self.writer = writer
        self.qid = qid
        self.pos = pos
        self.eof_sent = False


class ReproServer:
    """Multi-tenant standing-query service over TCP + HTTP listeners."""

    def __init__(self, data_dir, host="127.0.0.1", port=0, http_port=0,
                 quota=None, tenant_slots=1, queue_capacity=256,
                 read_deadline=2.0, ledger_max_entries=1_000):
        self.data_dir = str(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.host = host
        self.port = port
        self.http_port = http_port
        self.quota = quota
        self.tenant_slots = tenant_slots
        self.queue_capacity = queue_capacity
        self.read_deadline = read_deadline
        self.ledger = QuarantineLedger(
            max_entries=ledger_max_entries,
            sidecar=os.path.join(self.data_dir, "quarantine.jsonl"),
        )
        self.tenants = {}      # name -> TenantRuntime
        self.queues = {}       # name -> asyncio.Queue of (line, writer)
        self.subs = {}         # name -> [_Subscriber]
        self._consumers = {}   # name -> Task
        self._writers = set()  # every open StreamWriter (for drain BYE)
        self._servers = []
        self._stopped = None
        self.draining = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Recover persisted state, bind listeners, install signals."""
        self._stopped = asyncio.Event()
        self._recover()
        tcp = await asyncio.start_server(
            self._handle_tcp, self.host, self.port
        )
        self.port = tcp.sockets[0].getsockname()[1]
        http = await asyncio.start_server(
            self._handle_http, self.host, self.http_port
        )
        self.http_port = http.sockets[0].getsockname()[1]
        self._servers = [tcp, http]
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platform without signal support

    async def wait_stopped(self):
        await self._stopped.wait()

    def _recover(self):
        """Rebuild every tenant found in the state file or on disk.

        A crash can race the first state save, so journals on disk are
        authoritative for tenant existence; the state file contributes
        counters and the standing-query registry + digests.
        """
        doc = load_state(self.data_dir)
        # Quarantine-by-reason totals survive restarts with the state
        # file; entry bodies live in the JSONL sidecar.
        self.ledger.counts.update(doc.get("quarantine", {}))
        state = doc.get("tenants", {})
        on_disk = {
            os.path.basename(path)[len("journal-"):-len(".jsonl")]
            for path in glob.glob(
                os.path.join(self.data_dir, "journal-*.jsonl")
            )
        }
        for name in sorted(on_disk | set(state)):
            runtime = self._tenant(name)
            runtime.recover(state.get(name, {}))

    def _tenant(self, name) -> TenantRuntime:
        runtime = self.tenants.get(name)
        if runtime is None:
            runtime = TenantRuntime(
                name, self.data_dir, self.ledger, quota=self.quota,
                max_slots=self.tenant_slots,
            )
            self.tenants[name] = runtime
            self.queues[name] = asyncio.Queue(maxsize=self.queue_capacity)
            self.subs[name] = []
            self._consumers[name] = asyncio.ensure_future(
                self._consume(name)
            )
        return runtime

    # -- graceful drain ----------------------------------------------------

    def request_drain(self):
        """SIGTERM/SIGINT entry point: finish what's queued, then stop."""
        if not self.draining:
            self.draining = True
            asyncio.ensure_future(self._drain())

    async def _drain(self):
        for server in self._servers:
            server.close()
        for queue in self.queues.values():
            await queue.join()
        for name in self.tenants:
            await self._pump(name)
        self._save()
        for writer in list(self._writers):
            try:
                writer.write(b"BYE\n")
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass
        for task in self._consumers.values():
            task.cancel()
        for runtime in self.tenants.values():
            runtime.close()
        self._stopped.set()

    def _save(self):
        save_state(self.data_dir, {
            "tenants": {
                name: runtime.as_state()
                for name, runtime in self.tenants.items()
            },
            "quarantine": dict(self.ledger.counts),
        })

    # -- observability -----------------------------------------------------

    def serve_doc(self) -> dict:
        """The ``serve`` section of the live pipeline snapshot."""
        tenants = {}
        for name, runtime in self.tenants.items():
            tenants[name] = {
                "queue_depth": self.queues[name].qsize(),
                "queue_capacity": self.queue_capacity,
                "journal": runtime.journal.length,
                "watermark": runtime.watermark,
                "slots": runtime.slots,
                "max_slots": runtime.max_slots,
                "counters": dict(runtime.counters),
                "subscribers": len(self.subs[name]),
                "queries": {
                    qid: {
                        "spec": query.spec,
                        "delivered": query.delivered,
                        "completed": query.completed,
                        "buffered": query.buffered_events(),
                        "lag": lag_stats(query.lags),
                    }
                    for qid, query in runtime.queries.items()
                },
            }
        return {
            "draining": self.draining,
            "quota": self.quota,
            "quarantine": self.ledger.as_dict(),
            "tenants": tenants,
        }

    def snapshot(self) -> PipelineSnapshot:
        return PipelineSnapshot(
            [], meta={"service": "repro-serve"}, serve=self.serve_doc()
        )

    # -- shared read path --------------------------------------------------

    async def _read_line(self, reader, buf):
        """Deadline-guarded line read through a connection-owned buffer.

        Returns the decoded line, or ``None`` on EOF.  Raises
        :class:`_SlowWriter` when the peer stalls *mid-frame*; a peer
        that is merely idle between frames waits forever.
        """
        while True:
            nl = buf.find(b"\n")
            if nl >= 0:
                line = buf[:nl].decode("utf-8", "replace")
                del buf[:nl + 1]
                return line.rstrip("\r")
            try:
                chunk = await asyncio.wait_for(
                    reader.read(4096), self.read_deadline
                )
            except asyncio.TimeoutError:
                if buf:
                    raise _SlowWriter from None
                continue
            if not chunk:
                return None
            buf.extend(chunk)

    # -- TCP protocol ------------------------------------------------------

    async def _handle_tcp(self, reader, writer):
        self._writers.add(writer)
        buf = bytearray()
        tenant = None
        try:
            while True:
                try:
                    line = await self._read_line(reader, buf)
                except _SlowWriter:
                    self._evict(tenant, "stalled mid-frame")
                    break
                if line is None or self.draining:
                    break
                if not line.strip():
                    continue
                parts = line.split(" ")
                cmd = parts[0]
                if cmd == "HELLO" and len(parts) >= 2:
                    name = parts[1]
                    role = parts[2] if len(parts) > 2 else "ingest"
                    existed = name in self.tenants
                    runtime = self._tenant(name)
                    if existed:
                        # Quiesce: frames queued by previous connections
                        # must land before we report the resume offset,
                        # or the reconnecting client would resend them.
                        await self.queues[name].join()
                    if role == "ingest":
                        if runtime.had_ingest:
                            runtime.counters["reconnects"] += 1
                        runtime.had_ingest = True
                    tenant = name
                    self._reply(
                        writer,
                        f"OK tenant={name} journal={runtime.journal.length}",
                    )
                elif cmd == "SNAPSHOT":
                    self._reply(writer, self.snapshot().to_json(indent=None))
                elif cmd == "QUIT":
                    self._reply(writer, "BYE")
                    break
                elif tenant is None:
                    self._reply(writer, "ERR no-tenant say HELLO first")
                else:
                    # Everything tenant-scoped flows through the bounded
                    # queue: backpressure + serialized processing.
                    await self.queues[tenant].put((line, writer))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            if tenant is not None:
                self.subs[tenant] = [
                    s for s in self.subs[tenant] if s.writer is not writer
                ]
            try:
                writer.close()
            except RuntimeError:
                pass

    def _evict(self, tenant, why) -> None:
        if tenant is not None:
            self.tenants[tenant].counters["evictions"] += 1
            self._save()

    def _reply(self, writer, line) -> None:
        if writer is None:  # HTTP-originated frames have no line channel
            return
        try:
            writer.write((line + "\n").encode())
        except (ConnectionError, RuntimeError):
            pass

    # -- tenant consumers --------------------------------------------------

    async def _consume(self, name):
        queue = self.queues[name]
        while True:
            line, writer = await queue.get()
            try:
                await self._process(name, line, writer)
            except Exception:
                # The consumer must survive anything one frame can do.
                pass
            finally:
                queue.task_done()

    async def _process(self, name, line, writer):
        runtime = self.tenants[name]
        parts = line.split(" ", 5)
        cmd = parts[0]
        if cmd == "EVENT":
            try:
                offset = self._offset(runtime, parts[1])
                event = decode_data_frame(parts[2:])
            except (ServeProtocolError, IndexError) as exc:
                runtime.quarantine(runtime.journal.length, line, str(exc))
                return
            try:
                runtime.accept_event(offset, event)
            except ServeProtocolError as exc:
                self._reply(writer, f"ERR gap {exc}")
                return
            await self._pump(name)
        elif cmd == "PUNCT":
            try:
                offset = self._offset(runtime, parts[1])
                punct = decode_data_frame(parts[2:])
                if not hasattr(punct, "timestamp"):
                    raise ServeProtocolError("PUNCT frame carries an event")
            except (ServeProtocolError, IndexError) as exc:
                runtime.quarantine(runtime.journal.length, line, str(exc))
                return
            try:
                accepted = runtime.accept_punctuation(offset, punct.timestamp)
            except ServeProtocolError as exc:
                self._reply(writer, f"ERR gap {exc}")
                return
            if not accepted:
                return  # chaos duplicate: no ack, or IOFFs would desync
            await self._pump(name)
            self._save()
            self._reply(writer, f"IOFF {runtime.journal.length}")
        elif cmd == "END":
            try:
                offset = self._offset(runtime, parts[1])
            except (ServeProtocolError, IndexError) as exc:
                runtime.quarantine(runtime.journal.length, line, str(exc))
                return
            try:
                accepted = runtime.accept_end(offset)
            except ServeProtocolError as exc:
                self._reply(writer, f"ERR gap {exc}")
                return
            await self._pump(name)
            self._save()
            if accepted:
                self._reply(writer, f"IOFF {runtime.journal.length}")
        elif cmd == "SUB":
            await self._subscribe(runtime, line, writer)
        elif cmd == "UNSUB" and len(parts) >= 2:
            try:
                runtime.unsubscribe(parts[1])
            except ServeProtocolError as exc:
                self._reply(writer, f"ERR unsub {exc}")
                return
            self.subs[name] = [
                s for s in self.subs[name] if s.qid != parts[1]
            ]
            self._reply(writer, f"OK unsub {parts[1]}")
        else:
            runtime.quarantine(
                runtime.journal.length, line, f"unknown command {cmd!r}"
            )

    @staticmethod
    def _offset(runtime, text) -> int:
        try:
            offset = int(text)
        except ValueError:
            raise ServeProtocolError(
                f"offset {text!r} is not an integer"
            ) from None
        # -1 is the HTTP "append" sentinel: no client-side offsets.
        return runtime.journal.length if offset == -1 else offset

    async def _subscribe(self, runtime, line, writer):
        parts = line.split(" ")
        if len(parts) < 3:
            self._reply(writer, "ERR sub SUB <qid> <spec> [from=<n>]")
            return
        qid, spec = parts[1], parts[2]
        pos = 0
        for extra in parts[3:]:
            if extra.startswith("from="):
                try:
                    pos = int(extra[len("from="):])
                except ValueError:
                    self._reply(writer, "ERR sub bad from= position")
                    return
        try:
            runtime.subscribe(qid, spec)
        except ServeProtocolError as exc:
            self._reply(writer, f"ERR sub {exc}")
            return
        self.subs[runtime.name].append(_Subscriber(writer, qid, pos))
        self._reply(writer, f"OK sub {qid}")
        await self._pump(runtime.name)

    async def _pump(self, name):
        """Deliver newly materialized results to every subscriber.

        A subscriber whose transport cannot drain within the deadline is
        evicted — one wedged consumer must not hold a tenant's results
        hostage.
        """
        runtime = self.tenants[name]
        for sub in list(self.subs[name]):
            query = runtime.queries.get(sub.qid)
            if query is None:
                continue
            wrote = False
            while sub.pos < len(query.results):
                self._reply(
                    sub.writer,
                    result_line(sub.qid, sub.pos, query.results[sub.pos]),
                )
                sub.pos += 1
                wrote = True
            if query.completed and not sub.eof_sent:
                self._reply(sub.writer, f"REOF {sub.qid} {sub.pos}")
                sub.eof_sent = True
                wrote = True
            if not wrote:
                continue
            try:
                await asyncio.wait_for(
                    sub.writer.drain(), self.read_deadline
                )
            except (asyncio.TimeoutError, ConnectionError):
                self.subs[name].remove(sub)
                self._evict(name, "subscriber failed to drain")
                try:
                    sub.writer.close()
                except RuntimeError:
                    pass

    # -- HTTP/JSON-log framing ---------------------------------------------

    async def _handle_http(self, reader, writer):
        self._writers.add(writer)
        try:
            request = await asyncio.wait_for(
                reader.readline(), self.read_deadline
            )
            words = request.decode("utf-8", "replace").split(" ")
            if len(words) < 2:
                return
            method, target = words[0], words[1]
            length = 0
            while True:
                header = await asyncio.wait_for(
                    reader.readline(), self.read_deadline
                )
                text = header.decode("utf-8", "replace").strip()
                if not text:
                    break
                key, _, value = text.partition(":")
                if key.lower() == "content-length":
                    length = int(value.strip() or 0)
            body = b""
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_deadline * 4
                )
            status, doc = await self._route_http(method, target, body)
            payload = json.dumps(doc).encode() + b"\n"
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode() + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, ValueError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _route_http(self, method, target, body):
        if method == "GET" and target == "/healthz":
            return "200 OK", {"ok": True, "draining": self.draining}
        if method == "GET" and target == "/snapshot":
            return "200 OK", self.snapshot().as_dict()
        if method == "POST" and target.startswith("/ingest/"):
            name = target[len("/ingest/"):]
            if not name or "/" in name:
                return "404 Not Found", {"error": "bad tenant"}
            if self.draining:
                return "503 Service Unavailable", {"error": "draining"}
            self._tenant(name)
            queue = self.queues[name]
            accepted = 0
            for raw in body.decode("utf-8", "replace").splitlines():
                if not raw.strip():
                    continue
                await queue.put((self._http_frame(raw), None))
                accepted += 1
            await queue.join()
            runtime = self.tenants[name]
            self._save()
            return "200 OK", {
                "accepted": accepted,
                "journal": runtime.journal.length,
                "counters": dict(runtime.counters),
            }
        return "404 Not Found", {"error": f"no route {method} {target}"}

    @staticmethod
    def _http_frame(raw) -> str:
        """One NDJSON ingest document -> an equivalent protocol line.

        Unparseable documents pass through verbatim so the consumer
        quarantines them with the same machinery as TCP frames.
        """
        try:
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                return raw
        except json.JSONDecodeError:
            return raw
        offset = doc.get("offset", -1)
        if doc.get("end"):
            return f"END {offset}"
        if "punct" in doc:
            return f"PUNCT {offset} {doc['punct']}"
        key = json.dumps(doc.get("key", 0), separators=(",", ":"))
        payload = json.dumps(
            doc.get("payload"), separators=(",", ":")
        )
        return (
            f"EVENT {offset} {doc.get('sync')} "
            f"{doc.get('other', doc.get('sync', 0) + 1)} {key} {payload}"
        )

    def __repr__(self):
        return (
            f"ReproServer(port={self.port}, http_port={self.http_port}, "
            f"tenants={len(self.tenants)}, draining={self.draining})"
        )
