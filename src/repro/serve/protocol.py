"""Wire protocol and standing-query specs for ``repro serve``.

Two framings share one ingress service:

* **TCP line protocol** — newline-terminated UTF-8 frames, one command
  per line.  Data frames carry an explicit 0-based *element offset* so
  ingress is idempotent: a client that reconnects (or a chaos injector
  that duplicates frames) resends from the server-reported journal
  length, and anything below it is counted as a duplicate and dropped.

  Client -> server::

      HELLO <tenant>                 open / resume a tenant session
      EVENT <off> <sync> <other> <key-json> <payload-json>
      PUNCT <off> <ts>               punctuation (server replies IOFF)
      SUB <qid> <spec> [from=<n>]    register standing query, stream
                                     results from position n
      UNSUB <qid>                    cancel a standing query
      END <off>                      tenant stream complete (flush)
      SNAPSHOT                       one-line JSON snapshot reply
      QUIT                           close (server replies BYE)

  Server -> client::

      OK <detail...>                 command accepted
      IOFF <n>                       journal length after a PUNCT/END
      RESULT <qid> <n> <sync> <other> <key-json> <payload-json>
      RPUNCT <qid> <n> <ts>          result-stream punctuation
      REOF <qid> <n>                 standing query completed (flushed)
      ERR <kind> <detail...>         command rejected
      BYE                            connection closing

* **HTTP/JSON-log framing** — a minimal HTTP/1.1 surface for log
  shippers and dashboards: ``POST /ingest/<tenant>`` with an NDJSON
  body of ``{"sync":..,"other":..,"key":..,"payload":..}`` /
  ``{"punct": ts}`` documents, ``GET /snapshot`` returning the live
  :class:`~repro.observability.PipelineSnapshot` document, and
  ``GET /healthz``.

Standing queries are transported as compact spec strings (``spec`` in
``SUB``) so they survive in checkpoints and journals::

    spec  := step ("|" step)*
    step  := "window=<int>"              tumbling_window
           | "hop=<size>/<stride>"      hopping_window
           | "where=<field><op><int>"   field in {key,sync}, op in {<,>,=}
           | "sort" | "sort=<policy>"   policy in {drop,adjust,raise}
           | "count"                    per-window event count
           | "group-count"              per-(window, key) count
           | "group-sum[=<idx>]"        per-(window, key) payload sum

Example: ``window=10|sort|group-count`` is the paper's running
grouped-count query over tumbling windows of 10 ticks.
"""

from __future__ import annotations

import json

from repro.core.errors import ServeProtocolError
from repro.core.late import LatePolicy
from repro.engine.event import Event, Punctuation, is_punctuation
from repro.engine.operators.aggregates import Count, Sum
from repro.engine.planner import QueryPlan

__all__ = [
    "decode_payload",
    "encode_element",
    "decode_data_frame",
    "parse_query_spec",
    "result_line",
]

_LATE_POLICIES = {
    "drop": LatePolicy.DROP,
    "adjust": LatePolicy.ADJUST,
    "raise": LatePolicy.RAISE,
}


def _dumps(value) -> str:
    """Compact JSON — no spaces, so frames stay space-splittable."""
    return json.dumps(value, separators=(",", ":"))


def decode_payload(text):
    """JSON payload text -> engine payload value.

    Lists become tuples (recursively) so served events compare equal —
    and ``repr()`` byte-identical — to batch-engine events.
    """
    return _tupled(json.loads(text))


def _tupled(value):
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


def _jsoned(value):
    if isinstance(value, tuple):
        return [_jsoned(v) for v in value]
    return value


def encode_element(element) -> str:
    """One journal/wire text fragment for an event or punctuation."""
    if is_punctuation(element):
        return _dumps(["p", element.timestamp])
    return _dumps([
        "e", element.sync_time, element.other_time, _jsoned(element.key),
        _jsoned(element.payload),
    ])


def decode_element(text):
    """Inverse of :func:`encode_element`."""
    doc = json.loads(text)
    if doc[0] == "p":
        return Punctuation(doc[1])
    if doc[0] == "e":
        return Event(doc[1], doc[2], _tupled(doc[3]), _tupled(doc[4]))
    raise ServeProtocolError(f"unknown journal element kind {doc[0]!r}")


def decode_data_frame(parts):
    """Decode the tail of an ``EVENT``/``PUNCT`` line.

    ``parts`` excludes the command word and the offset.  Raises
    :class:`ServeProtocolError` on any shape violation — the caller
    quarantines instead of crashing.
    """
    if len(parts) == 1:  # PUNCT <ts>
        try:
            return Punctuation(int(parts[0]))
        except ValueError:
            raise ServeProtocolError(
                f"punctuation timestamp {parts[0]!r} is not an integer"
            ) from None
    if len(parts) != 4:
        raise ServeProtocolError(
            f"event frame needs sync/other/key/payload, got {len(parts)} "
            "fields"
        )
    try:
        sync, other = int(parts[0]), int(parts[1])
        key = _tupled(json.loads(parts[2]))
        payload = decode_payload(parts[3])
    except (ValueError, json.JSONDecodeError) as exc:
        raise ServeProtocolError(f"unparseable event frame: {exc}") from None
    return Event(sync, other, key, payload)


def result_line(qid, position, element) -> str:
    """Server->client line for one delivered result element."""
    if is_punctuation(element):
        return f"RPUNCT {qid} {position} {element.timestamp}"
    return (
        f"RESULT {qid} {position} {element.sync_time} "
        f"{element.other_time} {_dumps(_jsoned(element.key))} "
        f"{_dumps(_jsoned(element.payload))}"
    )


def parse_result_line(line):
    """Client-side inverse of :func:`result_line`.

    Returns ``(qid, position, element)`` where ``element`` is an
    :class:`Event`, a :class:`Punctuation`, or ``None`` for ``REOF``.
    """
    parts = line.split(" ", 6)
    if parts[0] == "RPUNCT" and len(parts) == 4:
        return parts[1], int(parts[2]), Punctuation(int(parts[3]))
    if parts[0] == "REOF" and len(parts) == 3:
        return parts[1], int(parts[2]), None
    if parts[0] == "RESULT" and len(parts) == 7:
        return parts[1], int(parts[2]), Event(
            int(parts[3]), int(parts[4]),
            _tupled(json.loads(parts[5])), _tupled(json.loads(parts[6])),
        )
    raise ServeProtocolError(f"unparseable result line: {line!r}")


def parse_query_spec(spec) -> QueryPlan:
    """Compile a standing-query spec string into a :class:`QueryPlan`.

    The grammar is documented in the module docstring.  Specs are the
    durable representation of a standing query — they round-trip through
    ``SUB`` frames and recovery checkpoints — so parsing is strict:
    anything unrecognized raises :class:`ServeProtocolError`.
    """
    if not spec or not spec.strip():
        raise ServeProtocolError("empty query spec")
    plan = QueryPlan()
    sorted_yet = False
    for raw in spec.split("|"):
        step = raw.strip()
        name, _, arg = step.partition("=")
        if name == "window":
            plan = plan.tumbling_window(_int_arg(step, arg))
        elif name == "hop":
            size, _, stride = arg.partition("/")
            plan = plan.hopping_window(
                _int_arg(step, size), _int_arg(step, stride)
            )
        elif name == "where":
            plan = plan.where(_parse_predicate(step, arg))
        elif name == "sort":
            policy = None
            if arg:
                policy = _LATE_POLICIES.get(arg.strip())
                if policy is None:
                    raise ServeProtocolError(
                        f"{step!r}: late policy must be one of "
                        f"{sorted(_LATE_POLICIES)}"
                    )
            plan = plan.sort(late_policy=policy)
            sorted_yet = True
        elif step == "count":
            plan = plan.count()
        elif step == "group-count":
            plan = plan.group_aggregate(Count())
        elif name == "group-sum":
            selector = None
            if arg:
                index = _int_arg(step, arg, minimum=0)
                selector = _field_selector(index)
            plan = plan.group_aggregate(Sum(selector))
        else:
            raise ServeProtocolError(f"unknown query step {step!r}")
    if not sorted_yet:
        raise ServeProtocolError(
            "query spec needs an explicit 'sort' step (disordered "
            "ingress must be ordered before aggregation)"
        )
    return plan


def _int_arg(step, arg, minimum=1):
    try:
        value = int(arg)
    except ValueError:
        raise ServeProtocolError(
            f"{step!r}: expected an integer argument"
        ) from None
    if value < minimum:
        raise ServeProtocolError(f"{step!r}: argument must be >= {minimum}")
    return value


def _field_selector(index):
    def select(payload):
        return payload[index]

    return select


def _parse_predicate(step, arg):
    for op in ("<", ">", "="):
        field, found, value = arg.partition(op)
        if found:
            break
    else:
        raise ServeProtocolError(
            f"{step!r}: predicate must be <field><op><int> with op in "
            "< > ="
        )
    field = field.strip()
    if field not in ("key", "sync"):
        raise ServeProtocolError(
            f"{step!r}: predicate field must be 'key' or 'sync'"
        )
    try:
        bound = int(value)
    except ValueError:
        raise ServeProtocolError(
            f"{step!r}: predicate bound must be an integer"
        ) from None

    def attr(event):
        return event.key if field == "key" else event.sync_time

    if op == "<":
        return lambda e: attr(e) < bound
    if op == ">":
        return lambda e: attr(e) > bound
    return lambda e: attr(e) == bound
