"""Standing queries: long-lived incremental pipelines over tenant streams.

A :class:`StandingQuery` binds a compiled
:class:`~repro.engine.planner.QueryPlan` into a push
:class:`~repro.engine.graph.Pipeline` whose sink appends every emitted
element to an in-order result log.  The service pushes ingress elements
into every standing pipeline of the owning tenant as they arrive;
results materialize incrementally at punctuation boundaries exactly as
they would in a batch ``QueryPlan.run`` — the chaos soak asserts
byte-identity between the two.

Each query keeps a running SHA-256 digest over ``repr(element)`` lines
of its result log.  The digest is persisted in the service state file
and re-checked after crash-recovery replay: if the journal replay does
not regenerate the exact delivered prefix, recovery raises
:class:`~repro.core.errors.ReplayDivergenceError` instead of silently
serving a forked result stream.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import ReplayDivergenceError
from repro.engine.disordered import DisorderedStreamable
from repro.engine.event import Punctuation
from repro.engine.graph import Pipeline, QueryNode
from repro.engine.operators.sink import CallbackSink
from repro.serve.protocol import parse_query_spec

__all__ = ["StandingQuery"]


def _digest_of(elements) -> str:
    digest = hashlib.sha256()
    for element in elements:
        digest.update(repr(element).encode())
        digest.update(b"\n")
    return digest.hexdigest()


class StandingQuery:
    """One tenant's registered query: plan, live pipeline, result log."""

    def __init__(self, qid, spec):
        self.qid = qid
        self.spec = spec
        self.plan = parse_query_spec(spec)  # validates eagerly
        #: Delivered elements (events and punctuations) in emission
        #: order; a subscriber's resume position indexes this log.
        self.results = []
        self.completed = False
        #: Delivery-lag samples: ingress watermark minus result event
        #: end time, clamped at zero — how far behind live the query's
        #: output runs.
        self.lags = []
        self._digest = hashlib.sha256()
        self._watermark = None
        self.pipeline = self._build()

    def _build(self) -> Pipeline:
        stream = self.plan.bind(DisorderedStreamable.from_elements([]))
        sink = CallbackSink(self._on_event, self._on_punctuation,
                            self._on_flush)
        node = QueryNode(lambda: sink, ((stream.node, None),),
                         name=f"serve[{self.qid}]")
        return Pipeline([node])

    # -- delivery ----------------------------------------------------------

    def _record(self, element):
        self.results.append(element)
        self._digest.update(repr(element).encode())
        self._digest.update(b"\n")

    def _on_event(self, event):
        self._record(event)
        if self._watermark is not None:
            self.lags.append(max(0, self._watermark - (event.other_time - 1)))

    def _on_punctuation(self, timestamp):
        self._record(Punctuation(timestamp))

    def _on_flush(self):
        self.completed = True

    # -- ingress -----------------------------------------------------------

    def push_event(self, event):
        self.pipeline.push_event(event)

    def push_punctuation(self, timestamp):
        self._watermark = timestamp
        self.pipeline.push_punctuation(timestamp)

    def flush(self):
        self.pipeline.flush()

    def buffered_events(self) -> int:
        return self.pipeline.buffered_events()

    # -- durability --------------------------------------------------------

    @property
    def delivered(self) -> int:
        return len(self.results)

    def digest(self) -> str:
        return self._digest.hexdigest()

    def as_state(self) -> dict:
        """The portion persisted in ``state.json``."""
        return {
            "spec": self.spec,
            "delivered": self.delivered,
            "digest": self.digest(),
            "completed": self.completed,
        }

    def verify_replay(self, expected) -> None:
        """Check journal replay regenerated the persisted result prefix.

        ``expected`` is this query's ``as_state()`` dict from before the
        crash.  Replay must have delivered *at least* that many elements
        (the journal can run ahead of the last state write, never
        behind) and the prefix digest must match exactly.
        """
        want = expected.get("delivered", 0)
        if self.delivered < want:
            raise ReplayDivergenceError(
                f"standing query {self.qid!r}: replay delivered "
                f"{self.delivered} elements, state file recorded {want}"
            )
        got = _digest_of(self.results[:want])
        if got != expected.get("digest"):
            raise ReplayDivergenceError(
                f"standing query {self.qid!r}: replayed result prefix "
                f"diverges from the pre-crash digest (exactly-once "
                f"violated)"
            )

    def __repr__(self):
        return (
            f"StandingQuery(qid={self.qid!r}, spec={self.spec!r}, "
            f"delivered={self.delivered}, completed={self.completed})"
        )
