"""Synchronous tenant client for ``repro serve`` — and its chaos twin.

:class:`ServeClient` drives one tenant over two TCP connections — an
*ingest* connection for data frames and a *subscriber* connection for
standing-query results — because a single connection would deadlock: a
client blocked writing a large ingress burst cannot simultaneously drain
the results that burst produces.

The client is exactly-once by construction: it keeps the tenant's full
element list (offset = list index) and, after any disconnect — whether a
chaos fault, an eviction, or the server being ``kill -9``-ed — it
reconnects under its :class:`~repro.resilience.supervisor.RetryPolicy`
(seeded backoff, per-operation socket deadlines) and resumes from the
journal offset the server reports in its ``HELLO`` reply.  Results are
collected into a position-keyed map, so redelivery after a subscriber
reconnect deduplicates naturally.

When constructed with a :class:`~repro.resilience.chaos.FaultInjector`,
the client *is* the hostile traffic: before each first-time send of an
element it draws ``injector.net_fault(tenant)`` and applies the drawn
mode (``disconnect``/``slowloris``/``malform``/``dup``/``split``).
Each offset draws at most once, so the injector's ``fired`` counts
reconcile exactly with the server's per-tenant counters at the end of a
soak.
"""

from __future__ import annotations

import json
import socket
import time

from repro.engine.event import is_punctuation
from repro.resilience.supervisor import RetryPolicy
from repro.serve.protocol import (
    ServeProtocolError,
    _dumps,
    _jsoned,
    parse_result_line,
)

__all__ = ["ServeClient"]


class ServeClient:
    """Exactly-once tenant driver with optional net-fault injection."""

    def __init__(self, host, port, tenant, injector=None, retry=None,
                 io_timeout=10.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.injector = injector
        self.retry = retry or RetryPolicy(max_retries=40, base_delay=0.05,
                                          max_delay=1.0, seed=7)
        self.io_timeout = io_timeout
        self.outbox = []       # offset -> Event | Punctuation
        self.next = 0          # next offset to send
        self.specs = {}        # qid -> spec
        self.results = {}      # qid -> {pos: element}
        self.eof = {}          # qid -> final result count
        self.last_ioff = 0
        self._drawn = set()    # offsets that already drew a chaos fault
        self._ingest = None    # (socket, file)
        self._sub = None
        self._sub_active = set()
        self._loris = []       # deliberately stalled connections
        self._last_event_line = None
        self._server_journal = 0

    # -- public API --------------------------------------------------------

    def feed(self, elements) -> None:
        """Append elements to the tenant's canonical stream."""
        self.outbox.extend(elements)

    def subscribe(self, qid, spec) -> None:
        self.specs[qid] = spec
        self.results.setdefault(qid, {})
        self._with_retry(self._ensure_sub)

    def send_until(self, n) -> int:
        """Send every element below offset ``n``; returns the last
        ``IOFF``-acknowledged journal length (durability horizon)."""
        self._with_retry(self._send_step, min(n, len(self.outbox)))
        return self.last_ioff

    def finish(self) -> int:
        """Send the remainder plus the ``END`` marker; returns the final
        journal length (all elements + the flush marker)."""
        self._with_retry(self._send_step, len(self.outbox))
        self._with_retry(self._end_step)
        return self.last_ioff

    def await_complete(self, qid, deadline=60.0):
        """Block until ``qid`` has delivered its full result stream
        (``REOF`` seen and every position filled); returns the ordered
        element list."""
        end = time.monotonic() + deadline
        self._with_retry(self._collect_step, qid, end)
        return self.ordered_results(qid)

    def ordered_results(self, qid):
        got = self.results.get(qid, {})
        return [got[pos] for pos in sorted(got)]

    def snapshot(self) -> dict:
        """One-shot ``SNAPSHOT`` request on a fresh connection."""

        def step():
            sock, fh = self._connect()
            try:
                fh.write(b"SNAPSHOT\n")
                fh.flush()
                return json.loads(self._readline(fh))
            finally:
                sock.close()

        return self._with_retry(step)

    def close(self) -> None:
        for conn in (self._ingest, self._sub):
            if conn is not None:
                try:
                    conn[0].close()
                except OSError:
                    pass
        for sock in self._loris:
            try:
                sock.close()
            except OSError:
                pass
        self._ingest = self._sub = None
        self._loris.clear()

    # -- retry scaffolding -------------------------------------------------

    def _with_retry(self, fn, *args):
        attempt = 0
        while True:
            try:
                return fn(*args)
            except Exception as exc:
                if not self.retry.handles(exc):
                    raise
                if attempt >= self.retry.max_retries:
                    raise
                self._drop_connections()
                time.sleep(self.retry.delay(attempt))
                attempt += 1

    def _drop_connections(self):
        for conn in (self._ingest, self._sub):
            if conn is not None:
                try:
                    conn[0].close()
                except OSError:
                    pass
        self._ingest = self._sub = None
        self._sub_active = set()

    # -- transport ---------------------------------------------------------

    def _connect(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.io_timeout
        )
        return sock, sock.makefile("rwb")

    def _readline(self, fh) -> str:
        line = fh.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return line.decode().rstrip("\n")

    def _hello(self, fh, role=None) -> int:
        suffix = f" {role}" if role else ""
        fh.write(f"HELLO {self.tenant}{suffix}\n".encode())
        fh.flush()
        reply = self._readline(fh)
        if not reply.startswith("OK "):
            raise ConnectionResetError(f"HELLO rejected: {reply}")
        for word in reply.split(" "):
            if word.startswith("journal="):
                return int(word[len("journal="):])
        raise ServeProtocolError(f"HELLO reply without journal=: {reply}")

    def _ensure_ingest(self):
        if self._ingest is None:
            sock, fh = self._connect()
            journal = self._hello(fh)
            self._ingest = (sock, fh)
            # Resume: everything below the journal horizon is durable.
            self._server_journal = journal
            self.next = min(journal, len(self.outbox))
            # Everything the server journaled is durable, END included.
            self.last_ioff = max(self.last_ioff, journal)
        return self._ingest[1]

    def _ensure_sub(self):
        if self._sub is None:
            sock, fh = self._connect()
            self._hello(fh, role="sub")
            self._sub = (sock, fh)
            self._sub_active = set()
        fh = self._sub[1]
        for qid, spec in self.specs.items():
            if qid in self._sub_active:
                continue
            fh.write(
                f"SUB {qid} {spec} from={self._resume_pos(qid)}\n".encode()
            )
            fh.flush()
            self._wait_sub_ok(fh)
            self._sub_active.add(qid)
        return fh

    def _wait_sub_ok(self, fh):
        """Read until the SUB ack, absorbing any interleaved results."""
        while True:
            line = self._readline(fh)
            if line.startswith("OK sub"):
                return
            if line.startswith("ERR"):
                raise ServeProtocolError(line)
            self._absorb(line)

    def _absorb(self, line):
        rqid, pos, element = parse_result_line(line)
        if element is None:
            self.eof[rqid] = pos
        else:
            self.results.setdefault(rqid, {})[pos] = element

    def _resume_pos(self, qid) -> int:
        """First missing result position (contiguous prefix length)."""
        got = self.results.get(qid, {})
        pos = 0
        while pos in got:
            pos += 1
        return pos

    # -- ingest steps ------------------------------------------------------

    def _frame_for(self, offset) -> str:
        element = self.outbox[offset]
        if is_punctuation(element):
            return f"PUNCT {offset} {element.timestamp}"
        return (
            f"EVENT {offset} {element.sync_time} {element.other_time} "
            f"{_dumps(_jsoned(element.key))} {_dumps(_jsoned(element.payload))}"
        )

    def _send_step(self, n):
        while self.next < n:
            self._ensure_ingest()
            offset = self.next
            if offset >= n:
                break  # a resume rewound/advanced past the target
            line = self._frame_for(offset)
            already_sent = self._maybe_chaos(offset, line)
            if self._ingest is None:
                continue  # disconnect fault: reconnect + resume
            fh = self._ingest[1]
            if not already_sent:
                self._send_line(fh, line)
            if line.startswith("EVENT"):
                self._last_event_line = line
            self.next = offset + 1
            if line.startswith("PUNCT"):
                self._await_ioff(fh)

    def _end_step(self):
        fh = self._ensure_ingest()
        total = len(self.outbox)
        if self._server_journal > total or self.last_ioff > total:
            return  # END already journaled before a reconnect
        self._send_line(fh, f"END {total}")
        self._await_ioff(fh)

    def _send_line(self, fh, line, split_at=None):
        data = (line + "\n").encode()
        if split_at is None:
            fh.write(data)
            fh.flush()
            return
        fh.write(data[:split_at])
        fh.flush()
        time.sleep(0.02)  # two packets, well under the server deadline
        fh.write(data[split_at:])
        fh.flush()

    def _await_ioff(self, fh):
        while True:
            reply = self._readline(fh)
            if reply.startswith("IOFF "):
                self.last_ioff = max(self.last_ioff, int(reply[5:]))
                return
            if reply == "BYE":
                raise ConnectionResetError("server draining")
            if reply.startswith("ERR"):
                raise ServeProtocolError(reply)

    # -- chaos -------------------------------------------------------------

    def _maybe_chaos(self, offset, line) -> bool:
        """Draw and apply at most one net fault per element offset.

        Returns ``True`` when the fault path already put the real frame
        on the wire (``split``); the caller then skips the normal send.
        """
        if self.injector is None or offset in self._drawn:
            return False
        self._drawn.add(offset)
        mode = self.injector.net_fault(self.tenant)
        if mode is None:
            return False
        fh = self._ingest[1]
        if mode == "disconnect":
            # Drop mid-stream and resume on a fresh connection.  Half-
            # close first so the server drains every in-flight frame —
            # otherwise frames racing the drop get resent after resume
            # and the duplicate counter stops reconciling with the
            # injector's dup count.
            sock = self._ingest[0]
            try:
                sock.shutdown(socket.SHUT_WR)
                while fh.readline():
                    pass
            except OSError:
                pass
            self._drop_connections()
        elif mode == "slowloris":
            # A throwaway connection stalls mid-frame until evicted.
            sock, loris = self._connect()
            self._hello(loris)
            loris.write(b"EVENT 999")  # half a frame, then silence
            loris.flush()
            self._loris.append(sock)
        elif mode == "malform":
            self._send_line(fh, f"EVENT {offset} not-a-sync-time !! {{")
        elif mode == "dup":
            # Resend an already-journaled event frame (or pre-send the
            # current one, whose normal send then becomes the duplicate)
            # — either way the server counts exactly one duplicate.
            # PUNCT frames are never duplicated: the extra IOFF ack
            # would desync the punctuation conversation.
            dup = self._last_event_line
            if dup is None and line.startswith("EVENT"):
                dup = line
            if dup is not None:
                self._send_line(fh, dup)
        elif mode == "split":
            self._send_line(fh, line, split_at=max(1, len(line) // 2))
            return True
        return False

    # -- subscriber steps --------------------------------------------------

    def _collect_step(self, qid, end):
        fh = self._ensure_sub()
        while True:
            done = self.eof.get(qid)
            if done is not None and len(self.results[qid]) >= done:
                return
            if time.monotonic() > end:
                # Deliberately NOT a TimeoutError: the retry policy
                # must not swallow the overall collection deadline.
                raise ServeProtocolError(
                    f"standing query {qid!r} incomplete after deadline"
                )
            line = self._readline(fh)
            if line == "BYE":
                raise ConnectionResetError("server draining")
            if line.startswith(("OK", "ERR")):
                continue
            self._absorb(line)
