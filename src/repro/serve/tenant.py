"""Per-tenant runtime: journal, standing queries, quotas, counters.

:class:`TenantRuntime` is the synchronous core of the service — a pure
state machine the asyncio server drives.  Everything hostile traffic can
do to a tenant lands here as an explicit, counted decision:

* **Duplicate frames** (reconnect replays, chaos ``net:dup``) are
  detected by ingress offset and dropped — ``counters["duplicates"]``.
* **Malformed frames** (chaos ``net:malform``, buggy shippers) are
  dead-lettered through the shared
  :class:`~repro.resilience.quarantine.QuarantineLedger` with a
  ``net:<tenant>@<offset>`` source record — ``counters["quarantined"]``.
* **Buffer-quota breaches** consult a per-tenant
  :class:`~repro.resilience.degradation.LoadSheddingGuard`.  With
  ``max_slots > 1`` the tenant is *elastic*: a breach first grows the
  quota by one slot (``counters["scale_ups"]``) — mirroring the
  parallel runtime's autoscaler, capacity before data loss — and only
  sheds once every slot is consumed.  A forced early punctuation is
  journaled as a ``"g"`` line so crash-recovery replay reproduces the
  shed deterministically — ``counters["shed"]``.  Slots retire
  (``counters["scale_downs"]``) once occupancy drains back under the
  next-lower tier's half mark.  Slot changes are *not* journaled:
  replay never consults the guard, so elasticity cannot perturb
  recovery.
* **Slow/stalled writers** are evicted by the server's read deadline —
  ``counters["evictions"]`` — and **reconnects** (including
  post-eviction and post-crash) increment ``counters["reconnects"]``.

The accept methods journal **before** pushing into standing pipelines,
which is the whole recovery story: replaying the journal through freshly
bound pipelines regenerates every result stream byte-for-byte.
"""

from __future__ import annotations

import os

from repro.core.errors import ServeProtocolError
from repro.resilience.degradation import LoadSheddingGuard
from repro.resilience.quarantine import Reason
from repro.serve.journal import TenantJournal
from repro.serve.standing import StandingQuery

__all__ = ["TenantRuntime"]

_NEG_INF = float("-inf")

_COUNTERS = ("quarantined", "duplicates", "reconnects", "evictions",
             "shed", "scale_ups", "scale_downs")


class TenantRuntime:
    """One tenant's durable ingress state and standing-query registry."""

    def __init__(self, name, data_dir, ledger, quota=None, max_slots=1):
        self.name = name
        self.journal = TenantJournal(
            os.path.join(data_dir, f"journal-{name}.jsonl")
        )
        self.ledger = ledger
        self.quota = quota
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.max_slots = int(max_slots)
        self.slots = 1             # current quota multiplier
        self.queries = {}          # qid -> StandingQuery
        self.counters = {c: 0 for c in _COUNTERS}
        #: Whether an ingest-role connection ever bound this tenant —
        #: the next ingest HELLO after that is a counted reconnect.
        self.had_ingest = False
        self.watermark = None      # last ingress punctuation timestamp
        self._high = _NEG_INF      # max sync_time seen (guard fallback ts)
        self._guard = None
        if quota is not None:
            self._guard = self._make_guard()

    def _make_guard(self) -> LoadSheddingGuard:
        return LoadSheddingGuard(
            max_buffered_events=self.quota * self.slots, check_interval=1
        )

    # -- standing queries --------------------------------------------------

    def subscribe(self, qid, spec) -> StandingQuery:
        if qid in self.queries:
            if self.queries[qid].spec != spec:
                raise ServeProtocolError(
                    f"query id {qid!r} already registered with a "
                    "different spec"
                )
            return self.queries[qid]
        query = StandingQuery(qid, spec)
        self.queries[qid] = query
        return query

    def unsubscribe(self, qid) -> None:
        if qid not in self.queries:
            raise ServeProtocolError(f"unknown query id {qid!r}")
        del self.queries[qid]

    # -- ingress -----------------------------------------------------------

    def _dedup(self, offset) -> bool:
        """True when ``offset`` was already journaled (drop + count)."""
        if offset < self.journal.length:
            self.counters["duplicates"] += 1
            return True
        if offset > self.journal.length:
            raise ServeProtocolError(
                f"ingress gap: got offset {offset}, expected "
                f"{self.journal.length}"
            )
        return False

    def accept_event(self, offset, event) -> bool:
        """Journal + push one event; False when it was a duplicate."""
        if self._dedup(offset):
            return False
        self.journal.append_event(event)
        if event.sync_time > self._high:
            self._high = event.sync_time
        for query in self.queries.values():
            query.push_event(event)
        self._check_quota()
        return True

    def accept_punctuation(self, offset, timestamp) -> bool:
        if self._dedup(offset):
            return False
        self.journal.append_punctuation(timestamp)
        self.watermark = timestamp
        for query in self.queries.values():
            query.push_punctuation(timestamp)
        self._maybe_scale_down()
        return True

    def accept_end(self, offset) -> bool:
        """END frame: journal the flush marker and complete all queries."""
        if self._dedup(offset):
            return False
        self.journal.append_flush()
        for query in self.queries.values():
            query.flush()
        return True

    def quarantine(self, offset, line, detail) -> None:
        """Dead-letter a malformed frame; ingress keeps running."""
        self.ledger.record(
            Reason.MALFORMED, line,
            source=f"net:{self.name}@{offset}", detail=detail,
        )
        self.counters["quarantined"] += 1

    def _check_quota(self) -> None:
        """Consult the shedding guard against every standing pipeline.

        An elastic tenant (``max_slots > 1``) answers a breach by
        growing the quota one slot — discarding the guard (and its
        recorded decision) for a fresh one at the larger bound — so
        bursts ride on capacity, not data loss.  Only a breach with
        every slot consumed sheds: one forced early punctuation for the
        whole tenant, journaled as a ``"g"`` line first so replay
        re-applies the shed without re-consulting the guard
        (deterministic recovery).
        """
        if self._guard is None:
            return
        for query in self.queries.values():
            forced = self._guard.check(query.pipeline, self._high)
            if forced is not None:
                if self.slots < self.max_slots:
                    self.slots += 1
                    self._guard = self._make_guard()
                    self.counters["scale_ups"] += 1
                    return
                self.journal.append_punctuation(forced, forced=True)
                self.watermark = forced
                for q in self.queries.values():
                    q.push_punctuation(forced)
                self.counters["shed"] += 1
                return

    def _maybe_scale_down(self) -> None:
        """Retire a slot once occupancy drains below half the
        next-lower tier (hysteresis: the grow trigger is the full
        current tier, so draining jitter cannot thrash)."""
        if self._guard is None or self.slots <= 1:
            return
        buffered = sum(
            query.pipeline.buffered_events()
            for query in self.queries.values()
        )
        changed = False
        while (
            self.slots > 1
            and buffered <= (self.quota * (self.slots - 1)) // 2
        ):
            self.slots -= 1
            self.counters["scale_downs"] += 1
            changed = True
        if changed:
            self._guard = self._make_guard()

    # -- recovery ----------------------------------------------------------

    def recover(self, state) -> None:
        """Rebuild from the persisted state doc + journal replay.

        Re-registers every standing query, replays the journal through
        the fresh pipelines (guard *not* consulted — ``"g"`` lines are
        replayed as plain punctuations), then verifies each query's
        regenerated result prefix against its pre-crash digest.
        """
        self.counters.update(state.get("counters", {}))
        # Resume at the pre-crash slot tier (clamped: the server may
        # have restarted with a smaller --tenant-slots).
        self.slots = min(int(state.get("slots", 1)), self.max_slots)
        if self._guard is not None:
            self._guard = self._make_guard()
        # A recovered tenant was fed before the crash, so its next
        # ingest HELLO is a reconnect.
        self.had_ingest = True
        expected = state.get("queries", {})
        for qid, qstate in expected.items():
            self.subscribe(qid, qstate["spec"])
        for kind, element in self.journal.load():
            if kind == "e":
                if element.sync_time > self._high:
                    self._high = element.sync_time
                for query in self.queries.values():
                    query.push_event(element)
            elif kind in ("p", "g"):
                self.watermark = element.timestamp
                for query in self.queries.values():
                    query.push_punctuation(element.timestamp)
            else:  # "f"
                for query in self.queries.values():
                    query.flush()
        for qid, qstate in expected.items():
            self.queries[qid].verify_replay(qstate)

    # -- export ------------------------------------------------------------

    def as_state(self) -> dict:
        """The durable slice for ``state.json``."""
        return {
            "counters": dict(self.counters),
            "journal": self.journal.length,
            "watermark": self.watermark,
            "slots": self.slots,
            "queries": {
                qid: query.as_state()
                for qid, query in self.queries.items()
            },
        }

    def close(self):
        self.journal.close()

    def __repr__(self):
        return (
            f"TenantRuntime(name={self.name!r}, "
            f"journal={self.journal.length}, queries={len(self.queries)})"
        )
