"""repro — reproduction of "Impatience Is a Virtue" (ICDE 2018).

Public API surface:

* :mod:`repro.core` — Impatience/Patience sort and merge machinery;
* :mod:`repro.sorting` — baseline sorters and the incremental adapter;
* :mod:`repro.metrics` — the four disorder measures;
* :mod:`repro.observability` — per-operator pipeline metrics,
  punctuation tracing, and structured metrics export;
* :mod:`repro.engine` — the mini-Trill streaming engine
  (``Streamable`` / ``DisorderedStreamable``);
* :mod:`repro.framework` — the basic and advanced Impatience frameworks;
* :mod:`repro.workloads` — CloudLog/AndroidLog simulators and the
  synthetic generator.
"""

from repro.core import (
    ColumnarImpatienceSorter,
    ImpatienceSorter,
    LatePolicy,
    PatienceSorter,
    patience_sort,
)
from repro.engine import (
    DisorderedStreamable,
    Event,
    EventBatch,
    Punctuation,
    QueryPlan,
    Streamable,
)
from repro.framework import (
    PAPER_QUERIES,
    MemoryMeter,
    Streamables,
    build_streamables,
    make_query,
    run_method,
)
from repro.metrics import measure_disorder, suggest_reorder_latency
from repro.observability import MetricsRegistry, PipelineSnapshot
from repro.sorting import make_online_sorter, offline_sort
from repro.workloads import (
    Dataset,
    generate_androidlog,
    generate_cloudlog,
    generate_synthetic,
    load_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "DisorderedStreamable",
    "Event",
    "EventBatch",
    "ColumnarImpatienceSorter",
    "ImpatienceSorter",
    "LatePolicy",
    "MemoryMeter",
    "MetricsRegistry",
    "PAPER_QUERIES",
    "PipelineSnapshot",
    "PatienceSorter",
    "Punctuation",
    "QueryPlan",
    "Streamable",
    "Streamables",
    "build_streamables",
    "generate_androidlog",
    "generate_cloudlog",
    "generate_synthetic",
    "load_dataset",
    "make_online_sorter",
    "make_query",
    "measure_disorder",
    "offline_sort",
    "patience_sort",
    "run_method",
    "suggest_reorder_latency",
    "__version__",
]
