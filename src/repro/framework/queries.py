"""The paper's framework-evaluation queries Q1–Q4 (Section VI-D).

* **Q1** — tumbling-window count.
* **Q2** — windowed count over 100 groups.
* **Q3** — windowed count over 1000 groups.
* **Q4** — windowed top-5 groups (of 100) by count.

Each query is decomposed the way the advanced framework needs it:

* ``window_size`` — the tumbling window pushed down onto the
  ``DisorderedStreamable`` (sort-as-needed, Section V-C's example does the
  same push-down);
* ``body`` — the order-sensitive remainder, applied to a sorted stream
  (used directly by the MinLatency / MaxLatency / basic-framework paths);
* ``piq`` — the partial-input query run per partition;
* ``merge`` — the combiner run after each union of partial results.

Group keys derive from the first payload field so Q3's 1000 groups do not
depend on the dataset's key cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.operators.aggregates import Count, Sum

__all__ = ["PaperQuery", "PAPER_QUERIES", "make_query"]

#: Default tumbling window: 1 second in milliseconds (Q1's "one-second
#: windowed count").
DEFAULT_WINDOW = 1_000


def _group_key_fn(n_groups):
    def key_fn(event):
        return event.payload[0] % n_groups

    return key_fn


@dataclass(frozen=True)
class PaperQuery:
    """One of Q1–Q4, decomposed for every execution method."""

    name: str
    description: str
    window_size: int
    n_groups: int = 0
    top_k: int = 0
    params: dict = field(default_factory=dict)

    def body(self, stream):
        """Order-sensitive query logic over an already-windowed stream."""
        if self.n_groups:
            grouped = stream.group_aggregate(
                Count(), key_fn=_group_key_fn(self.n_groups)
            )
            if self.top_k:
                return grouped.top_k(self.top_k)
            return grouped
        return stream.count()

    def full(self, stream):
        """Window + body, for standalone single-stream execution."""
        return self.body(stream.tumbling_window(self.window_size))

    def piq(self, stream):
        """Partial-input query: the same fold, per partition."""
        if self.n_groups:
            # Partial per-group counts; top-k must wait for the merge.
            return stream.group_aggregate(
                Count(), key_fn=_group_key_fn(self.n_groups)
            )
        return stream.count()

    def merge(self, stream):
        """Combine partial results: sum partial counts per window (and
        group), then apply any final ranking."""
        if self.n_groups:
            merged = stream.group_aggregate(Sum())
            if self.top_k:
                return merged.top_k(self.top_k)
            return merged
        return stream.aggregate(Sum())


def make_query(name, window_size=DEFAULT_WINDOW) -> PaperQuery:
    """Build one of Q1–Q4 with a custom window size."""
    queries = {
        "Q1": PaperQuery(
            "Q1", "tumbling-window count", window_size
        ),
        "Q2": PaperQuery(
            "Q2", "windowed count over 100 groups", window_size, n_groups=100
        ),
        "Q3": PaperQuery(
            "Q3", "windowed count over 1000 groups", window_size,
            n_groups=1000,
        ),
        "Q4": PaperQuery(
            "Q4", "windowed top-5 of 100 groups by count", window_size,
            n_groups=100, top_k=5,
        ),
    }
    try:
        return queries[name]
    except KeyError:
        raise ValueError(
            f"unknown query {name!r}; expected one of {sorted(queries)}"
        ) from None


#: Q1–Q4 with the default one-second window.
PAPER_QUERIES = tuple(make_query(name) for name in ("Q1", "Q2", "Q3", "Q4"))
