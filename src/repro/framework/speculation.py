"""Speculation baseline (§VII; Barga et al., CIDR 2007).

The pre-Impatience alternative the paper argues against:

    "operators produce output before receiving all the data, and on
    receiving late events, are responsible for retracting incorrect
    outputs and adding the correct revised outputs. [...] introducing
    speculation into each operator makes operator logic highly complex
    [...] there can be a non-trivial amount of revision traffic."

:class:`SpeculativeWindowAggregate` is that strategy for windowed
aggregation: it consumes the *disordered* stream directly (no sorting
operator at all), emits a provisional result for every dirty window at
each punctuation, and emits retraction + correction pairs whenever late
events change an already-published window.  Output events carry payloads
``("insert", value)`` and ``("retract", value)``; a consumer must apply
the revision stream to converge on the truth.

The ablation benchmark (``benchmarks/bench_ablation_baselines.py``)
quantifies the cost: revision traffic and state growth versus the
Impatience framework's single clean stream per latency.
"""

from __future__ import annotations

from repro.engine.event import Event
from repro.engine.operators.base import Operator

__all__ = ["SpeculativeWindowAggregate", "apply_revisions"]


class SpeculativeWindowAggregate(Operator):
    """Windowed aggregate over a disordered stream with revision output.

    Parameters
    ----------
    aggregate:
        A fold (:class:`repro.engine.operators.aggregates.Aggregate`).
    window_size:
        Tumbling window width; the operator aligns raw event times itself
        (it cannot rely on an upstream window operator because it accepts
        events in arrival order).

    Counters ``insertions``/``retractions`` expose the revision traffic;
    ``buffered_count`` is the per-window state the operator must hold for
    the *whole stream lifetime* (a speculative operator can never discard
    state — any window might still be revised).
    """

    def __init__(self, aggregate, window_size):
        super().__init__()
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        self.aggregate = aggregate
        self.window_size = window_size
        self._states = {}      # window start -> fold state
        self._published = {}   # window start -> last published value
        self._dirty = set()
        self.insertions = 0
        self.retractions = 0

    def on_event(self, event):
        start = event.sync_time - event.sync_time % self.window_size
        state = self._states.get(start)
        if state is None:
            state = self.aggregate.initial()
        self._states[start] = self.aggregate.accumulate(state, event)
        self._dirty.add(start)

    def on_punctuation(self, punctuation):
        self._publish()
        self.emit_punctuation(punctuation)

    def on_flush(self):
        self._publish()
        self.emit_flush()

    def _publish(self):
        for start in sorted(self._dirty):
            value = self.aggregate.result(self._states[start])
            end = start + self.window_size
            previous = self._published.get(start)
            if previous is not None:
                if previous == value:
                    continue
                self.retractions += 1
                self.emit_event(Event(start, end, 0, ("retract", previous)))
            self.insertions += 1
            self.emit_event(Event(start, end, 0, ("insert", value)))
            self._published[start] = value
        self._dirty.clear()

    @property
    def revision_messages(self) -> int:
        """Total output traffic: provisional inserts + retractions."""
        return self.insertions + self.retractions

    def buffered_count(self) -> int:
        return len(self._states)


def apply_revisions(events) -> dict:
    """Fold a revision stream into final per-window values.

    The consumer-side logic speculation forces on every subscriber:
    returns ``{window_start: final_value}``.  Raises if a retraction does
    not match the currently-held value (a corrupted revision stream).
    """
    current = {}
    for event in events:
        kind, value = event.payload
        if kind == "insert":
            current[event.sync_time] = value
        elif kind == "retract":
            held = current.get(event.sync_time)
            if held != value:
                raise ValueError(
                    f"retraction of {value!r} but holding {held!r} "
                    f"for window {event.sync_time}"
                )
            # The matching insert follows; keep the slot until it lands.
            del current[event.sync_time]
        else:
            raise ValueError(f"unknown revision kind {kind!r}")
    return current
