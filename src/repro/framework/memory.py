"""Memory accounting for framework experiments (Figure 10(b)/(d)).

The paper reports working-set memory; the dominant, design-dependent term
is events buffered inside blocking operators — sorters waiting for
punctuations and unions synchronizing streams of different latency.  The
meter integrates ``buffered_count`` over every operator in a pipeline at
sampling points (each punctuation) and reports the peak in bytes using the
Trill event layout (:data:`repro.engine.event.EVENT_BYTES`).
"""

from __future__ import annotations

from repro.engine.event import EVENT_BYTES

__all__ = ["MemoryMeter"]


class MemoryMeter:
    """Peak-occupancy sampler over a pipeline's buffering operators."""

    def __init__(self, bytes_per_event: int = EVENT_BYTES):
        self.bytes_per_event = bytes_per_event
        self.peak_events = 0
        self.samples = 0

    def sample(self, pipeline):
        """Record current occupancy; suitable as an ``on_punctuation`` hook."""
        buffered = pipeline.buffered_events()
        self.samples += 1
        if buffered > self.peak_events:
            self.peak_events = buffered

    def reset(self):
        """Forget the peak (supervised execution resets per attempt)."""
        self.peak_events = 0
        self.samples = 0

    @property
    def peak_bytes(self) -> int:
        """Peak buffered volume in bytes."""
        return self.peak_events * self.bytes_per_event

    @property
    def peak_mb(self) -> float:
        """Peak buffered volume in megabytes (Figure 10's unit)."""
        return self.peak_bytes / (1024.0 * 1024.0)

    def __repr__(self):
        return (
            f"MemoryMeter(peak_events={self.peak_events}, "
            f"peak_mb={self.peak_mb:.3f}, samples={self.samples})"
        )
