"""Adaptive reorder latency: tune the completeness knob online.

The paper tunes reorder latency offline, per dataset (§VI-B2).  In a
long-running deployment the lateness distribution drifts — a server
outage or a fleet of phones coming back online changes what "enough
latency" means.  :class:`AdaptiveLatencyPolicy` is a punctuation policy
that *learns* the latency: it keeps a reservoir sample of recent
lateness values and, at every punctuation, sets the lag to the
configured coverage quantile of that sample (clamped, smoothed, and
floored so the watermark stays monotone).

Drop-in replacement for
:class:`~repro.engine.punctuation.PunctuationPolicy` at ingress.
"""

from __future__ import annotations

import math
import random

__all__ = ["AdaptiveLatencyPolicy"]

_NEG_INF = float("-inf")


class AdaptiveLatencyPolicy:
    """Punctuate at ``high_watermark − learned_latency``.

    Parameters
    ----------
    frequency:
        Events between punctuations (as in the static policy).
    coverage:
        Target completeness: the learned latency tracks this quantile of
        observed lateness.
    reservoir_size:
        Size of the lateness reservoir sample (uniform over the window
        of observed events so far; classic Algorithm R).
    smoothing:
        Exponential smoothing factor for latency updates in (0, 1]; 1
        jumps straight to the new quantile.
    initial_latency / min_latency / max_latency:
        Starting point and clamp range for the learned value.
    seed:
        Reservoir RNG seed (deterministic by default).
    """

    def __init__(self, frequency, coverage=0.95, reservoir_size=2048,
                 smoothing=0.5, initial_latency=0, min_latency=0,
                 max_latency=None, seed=0):
        if frequency is None or frequency < 1:
            raise ValueError("frequency must be >= 1")
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be within (0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be within (0, 1]")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.frequency = frequency
        self.coverage = coverage
        self.smoothing = smoothing
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.latency = float(initial_latency)
        self._rng = random.Random(seed)
        self._reservoir = []
        self._reservoir_size = reservoir_size
        self._observed = 0
        self._count = 0
        self._high_watermark = _NEG_INF
        self._last_punctuation = _NEG_INF

    @property
    def high_watermark(self):
        return self._high_watermark

    @property
    def last_punctuation(self):
        return self._last_punctuation

    def _sample(self, lateness):
        self._observed += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(lateness)
            return
        slot = self._rng.randrange(self._observed)
        if slot < self._reservoir_size:
            self._reservoir[slot] = lateness

    def _quantile(self):
        if not self._reservoir:
            return self.latency
        ordered = sorted(self._reservoir)
        rank = min(
            max(math.ceil(self.coverage * len(ordered)) - 1, 0),
            len(ordered) - 1,
        )
        return ordered[rank]

    def observe(self, event_time):
        """Account for one event; maybe return a punctuation timestamp."""
        if event_time > self._high_watermark:
            self._high_watermark = event_time
            lateness = 0
        else:
            lateness = self._high_watermark - event_time
        self._sample(lateness)
        self._count += 1
        if self._count % self.frequency:
            return None
        target = self._quantile()
        self.latency += self.smoothing * (target - self.latency)
        if self.max_latency is not None:
            self.latency = min(self.latency, self.max_latency)
        self.latency = max(self.latency, self.min_latency)
        timestamp = self._high_watermark - self.latency
        if timestamp <= self._last_punctuation:
            return None
        self._last_punctuation = timestamp
        return timestamp
