"""Plan builders for the basic and advanced Impatience frameworks (Fig. 6).

``build_streamables`` constructs the full DAG behind
``DisorderedStreamable.to_streamables``:

* **partition** — one :class:`~repro.framework.partition.LatenessPartition`
  splits the disordered input into per-latency disordered streams;
* **sort** — one sorting operator per path (Impatience sort by default),
  driven by the partitioner's per-path punctuations;
* **PIQ** — the user's partial-input-query function on each sorted path
  (pass-through in the basic framework);
* **union cascade** — path i's PIQ output unions with the cascade so far,
  so output i covers everything arriving within latency i;
* **merge** — the user's combine function immediately after each union
  (pass-through in the basic framework).

With ``piq = merge = None`` the construction *is* the basic framework —
the identity the paper states in Section V-B and which the test suite
checks property-style.
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.core.impatience import ImpatienceSorter
from repro.engine.graph import QueryNode
from repro.engine.operators.sort import Sort
from repro.engine.operators.union import Union
from repro.engine.stream import Streamable
from repro.framework.partition import LatenessPartition
from repro.framework.streamables import Streamables

__all__ = ["build_streamables"]


def _sync_time(event):
    return event.sync_time


def _default_sorter():
    return ImpatienceSorter(key=_sync_time)


def build_streamables(disordered, reorder_latencies, piq=None, merge=None,
                      sorter=None) -> Streamables:
    """Assemble the framework DAG over a ``DisorderedStreamable``.

    Parameters
    ----------
    disordered:
        The upstream disordered stream (order-insensitive operators may
        already be pushed onto it — Section V-C's first example does so).
    reorder_latencies:
        Strictly increasing latency values, e.g. ``[1_000, 60_000,
        3_600_000]`` for {1 s, 1 min, 1 h} in milliseconds.
    piq, merge:
        Advanced-framework query functions, each ``Streamable ->
        Streamable``; both ``None`` selects the basic framework.
    sorter:
        Zero-argument factory for per-path online sorters (default:
        Impatience sort).
    """
    latencies = list(reorder_latencies)
    if not latencies:
        raise QueryBuildError("to_streamables requires at least one latency")
    if (piq is None) != (merge is None) and len(latencies) > 1:
        raise QueryBuildError(
            "provide both piq and merge functions, or neither"
        )
    # Late-bound execution knobs: ``Streamables.run(memory_budget=...)``
    # fills this dict *before* the graph materializes, so the per-path
    # default sorters can pick the bounded-memory external sorter at
    # operator-construction time without rebuilding the DAG.
    runtime = {
        "memory_budget": None,
        "custom_sorter": sorter is not None,
        "spill_sorters": [],
    }

    def default_factory():
        budget = runtime["memory_budget"]
        if budget is not None:
            from repro.sorting.external import ExternalImpatienceSorter

            spill_sorter = ExternalImpatienceSorter(budget, key=_sync_time)
            runtime["spill_sorters"].append(spill_sorter)
            return spill_sorter
        return _default_sorter()

    sorter_factory = default_factory if sorter is None else sorter

    partition_node = QueryNode(
        lambda: LatenessPartition(latencies),
        ((disordered.node, None),),
        name="partition",
    )

    sorted_paths = [
        Streamable(
            QueryNode(
                lambda: Sort(sorter_factory()),
                ((partition_node, index),),
                name=f"sort[{index}]",
            ),
            disordered.source,
        )
        for index in range(len(latencies))
    ]

    piq_paths = [path.apply(piq) for path in sorted_paths]

    outputs = [piq_paths[0]]
    cascade = piq_paths[0]
    for path in piq_paths[1:]:
        union_node = QueryNode(
            Union, ((cascade.node, None), (path.node, None)), name="union"
        )
        cascade = Streamable(union_node, disordered.source)
        outputs.append(cascade.apply(merge))

    return Streamables(
        outputs, latencies, partition_node, disordered.source,
        runtime=runtime,
    )
