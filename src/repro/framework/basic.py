"""Basic Impatience framework (Section V-A) — thin alias.

The basic framework is the advanced construction with pass-through PIQ and
merge functions (the reduction stated in Section V-B); this module names
that case explicitly for discoverability.
"""

from __future__ import annotations

from repro.framework.advanced import build_streamables

__all__ = ["build_basic_streamables"]


def build_basic_streamables(disordered, reorder_latencies, sorter=None):
    """Fig. 6(a): partition → per-path sort → cascaded unions, no PIQ/merge."""
    return build_streamables(
        disordered, reorder_latencies, piq=None, merge=None, sorter=sorter
    )
