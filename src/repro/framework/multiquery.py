"""Multi-query execution over one shared framework fan-out.

The basic framework's weakness (§V-B) is redundant evaluation; the same
trap exists one level up when *several queries* subscribe to the same
out-of-order stream: naively, each builds its own partition + sorters
and the input is re-sorted per query.  Because this engine's plans are
DAGs with identity-based materialization, the fix is structural:
:func:`build_multi_query` hangs every query's PIQ/union/merge cascade
off one shared :class:`~repro.framework.partition.LatenessPartition`
and one set of per-latency sorters, and runs everything in a single
pass.

Returns a :class:`MultiQueryRun` whose per-query results expose the same
surface as :class:`~repro.framework.streamables.StreamablesResult`.
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.core.impatience import ImpatienceSorter
from repro.engine.graph import Pipeline, QueryNode
from repro.engine.operators.sort import Sort
from repro.engine.operators.union import Union
from repro.engine.stream import Streamable
from repro.framework.memory import MemoryMeter
from repro.framework.partition import LatenessPartition
from repro.framework.streamables import LatencyCollector, StreamablesResult

__all__ = ["build_multi_query", "MultiQueryRun"]


def _default_sorter():
    return ImpatienceSorter(key=lambda event: event.sync_time)


def build_multi_query(disordered, reorder_latencies, queries,
                      sorter=None) -> "MultiQueryRun":
    """Assemble shared partition/sort paths plus per-query cascades.

    Parameters
    ----------
    disordered:
        The upstream ``DisorderedStreamable`` (push-downs welcome).
    reorder_latencies:
        The shared, strictly increasing latency ladder.
    queries:
        Mapping ``name -> (piq, merge)``; either member may be ``None``
        (pass-through).  Each query gets its own output per latency.
    sorter:
        Optional per-path sorter factory (shared paths, so one sorter
        per latency serves every query).
    """
    latencies = list(reorder_latencies)
    if not latencies:
        raise QueryBuildError("at least one reorder latency is required")
    if not queries:
        raise QueryBuildError("at least one query is required")
    sorter_factory = _default_sorter if sorter is None else sorter

    partition_node = QueryNode(
        lambda: LatenessPartition(latencies),
        ((disordered.node, None),),
        name="partition",
    )
    sorted_paths = [
        Streamable(
            QueryNode(
                lambda: Sort(sorter_factory()),
                ((partition_node, index),),
                name=f"sort[{index}]",
            ),
            disordered.source,
        )
        for index in range(len(latencies))
    ]

    per_query_outputs = {}
    for name, (piq, merge) in queries.items():
        piq_paths = [path.apply(piq) for path in sorted_paths]
        outputs = [piq_paths[0]]
        cascade = piq_paths[0]
        for path in piq_paths[1:]:
            union_node = QueryNode(
                Union, ((cascade.node, None), (path.node, None)),
                name=f"union[{name}]",
            )
            cascade = Streamable(union_node, disordered.source)
            outputs.append(cascade.apply(merge))
        per_query_outputs[name] = outputs

    return MultiQueryRun(
        per_query_outputs, latencies, partition_node, disordered.source
    )


class MultiQueryRun:
    """The assembled multi-query plan; ``run()`` executes it once."""

    def __init__(self, per_query_outputs, latencies, partition_node, source):
        self._outputs = per_query_outputs
        self.latencies = latencies
        self._partition_node = partition_node
        self._source = source

    @property
    def query_names(self):
        return list(self._outputs)

    def run(self, memory_meter=None) -> dict:
        """One pass over the input; returns ``{query_name: result}``."""
        meter = MemoryMeter() if memory_meter is None else memory_meter
        clock = {}
        sink_nodes = {}
        all_sinks = []
        for name, outputs in self._outputs.items():
            nodes = [
                QueryNode(
                    lambda: LatencyCollector(clock),
                    ((stream.node, None),),
                    name=f"{name}[{i}]",
                )
                for i, stream in enumerate(outputs)
            ]
            sink_nodes[name] = nodes
            all_sinks.extend(nodes)
        pipeline = Pipeline(all_sinks)
        clock["partition"] = pipeline.operator_for(self._partition_node)
        pipeline.run(self._source.elements(), on_punctuation=meter.sample)
        partition = pipeline.operator_for(self._partition_node)
        return {
            name: StreamablesResult(
                [pipeline.operator_for(node) for node in nodes],
                partition,
                meter,
                self.latencies,
            )
            for name, nodes in sink_nodes.items()
        }
