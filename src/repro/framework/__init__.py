"""The Impatience framework (Section V of the paper)."""

from repro.framework.adaptive_latency import AdaptiveLatencyPolicy
from repro.framework.advanced import build_streamables
from repro.framework.audit import (
    METHODS,
    MethodResult,
    run_method,
    table2_rows,
)
from repro.framework.basic import build_basic_streamables
from repro.framework.memory import MemoryMeter
from repro.framework.multiquery import MultiQueryRun, build_multi_query
from repro.framework.partition import LatenessPartition
from repro.framework.queries import (
    DEFAULT_WINDOW,
    PAPER_QUERIES,
    PaperQuery,
    make_query,
)
from repro.framework.speculation import (
    SpeculativeWindowAggregate,
    apply_revisions,
)
from repro.framework.streamables import Streamables, StreamablesResult

__all__ = [
    "AdaptiveLatencyPolicy",
    "DEFAULT_WINDOW",
    "LatenessPartition",
    "METHODS",
    "MemoryMeter",
    "MethodResult",
    "MultiQueryRun",
    "PAPER_QUERIES",
    "PaperQuery",
    "SpeculativeWindowAggregate",
    "Streamables",
    "StreamablesResult",
    "apply_revisions",
    "build_basic_streamables",
    "build_multi_query",
    "build_streamables",
    "make_query",
    "run_method",
    "table2_rows",
]
