"""The ``Streamables`` abstraction (Section V-C).

``DisorderedStreamable.to_streamables(...)`` returns one of these: a
sequence of ordered output streams, one per reorder latency, sharing a
single source and a single materialized pipeline.  ``run()`` executes the
whole DAG in one pass, collecting every output and exposing the partition
operator's completeness ledger plus a memory meter.
"""

from __future__ import annotations

from repro.engine.graph import Pipeline, QueryNode
from repro.engine.operators.sink import Collector
from repro.framework.memory import MemoryMeter

__all__ = [
    "Streamables", "StreamablesResult", "LatencyCollector", "lag_stats",
]


def lag_stats(lags) -> dict:
    """Mean / p95 / max summary over a sequence of delivery lags.

    The shared quantile helper behind :class:`LatencyCollector` and the
    serve layer's per-tenant delivery-lag export — one definition, so
    Table II's latency column and the live ``serve`` snapshot section
    report the same statistic.
    """
    if not lags:
        return {"mean": 0.0, "p95": 0, "max": 0, "samples": 0}
    ordered = sorted(lags)
    return {
        "mean": sum(ordered) / len(ordered),
        "p95": ordered[min(int(0.95 * len(ordered)), len(ordered) - 1)],
        "max": ordered[-1],
        "samples": len(ordered),
    }


class LatencyCollector(Collector):
    """A collector that also measures *delivery lag* per event.

    Lag is defined against the ingress clock (the partition's event-time
    high watermark at the moment of emission): for a result event with
    interval ``[sync, other)``, the earliest instant it could have been
    delivered is when its interval closed (``other - 1``), so

        ``lag = ingress_high_watermark - (other_time - 1)``

    clamped at zero.  For output ``i`` of the framework the mean lag
    converges to the configured reorder latency ``L_i`` — Table II's
    latency column, measured instead of asserted.
    """

    def __init__(self, clock):
        super().__init__()
        self._clock = clock  # dict filled in after materialization
        self.lags = []

    def on_event(self, event):
        super().on_event(event)
        partition = self._clock.get("partition")
        if partition is not None:
            watermark = partition.high_watermark
            if watermark != float("-inf"):
                self.lags.append(
                    max(watermark - (event.other_time - 1), 0)
                )

    def latency_stats(self) -> dict:
        """Mean / p95 / max delivery lag over this output's events."""
        return lag_stats(self.lags)


class Streamables:
    """A sequence of ordered streams with increasing reorder latencies."""

    def __init__(self, outputs, latencies, partition_node, source,
                 runtime=None):
        self._outputs = list(outputs)
        self.latencies = list(latencies)
        self._partition_node = partition_node
        self._source = source
        # Execution knobs shared with the builder's sorter factories
        # (``build_streamables``): filled in by ``run(memory_budget=...)``
        # before the pipeline materializes.  ``None`` for hand-assembled
        # Streamables, which then reject a memory budget.
        self._runtime = runtime

    def __len__(self) -> int:
        return len(self._outputs)

    def __iter__(self):
        return iter(self._outputs)

    def streamable(self, index):
        """The output stream for the index-th reorder latency."""
        return self._outputs[index]

    def apply(self, query_fn) -> "Streamables":
        """Apply one query function to every output (basic-framework use)."""
        return Streamables(
            [stream.apply(query_fn) for stream in self._outputs],
            self.latencies,
            self._partition_node,
            self._source,
            runtime=self._runtime,
        )

    def subscribe(self, callbacks):
        """Attach one event callback per output; returns the pipeline.

        The streaming (non-materializing) counterpart of :meth:`run` —
        the paper's ``ss.Streamable(i).Subscribe(...)`` pattern over every
        output at once.  The caller drives the returned pipeline with
        ``pipeline.run(elements)`` (e.g. ``self.source.elements()``).
        """
        from repro.engine.operators.sink import CallbackSink

        callbacks = list(callbacks)
        if len(callbacks) != len(self._outputs):
            raise ValueError(
                f"expected {len(self._outputs)} callbacks, "
                f"got {len(callbacks)}"
            )
        sink_nodes = [
            QueryNode(
                lambda cb=cb: CallbackSink(cb),
                ((stream.node, None),),
                name=f"subscribe[{i}]",
            )
            for i, (stream, cb) in enumerate(zip(self._outputs, callbacks))
        ]
        return Pipeline(sink_nodes)

    def run(self, memory_meter=None, metrics=None, supervised=None,
            parallel=None, engine="auto",
            memory_budget=None) -> "StreamablesResult":
        """Materialize all outputs into one pipeline and drive the source.

        Returns a :class:`StreamablesResult` with per-output collectors,
        the completeness ledger, and the (optionally supplied) memory
        meter after sampling at every punctuation.  ``metrics`` is an
        optional :class:`~repro.observability.MetricsRegistry` attached
        before the source is driven; it is also stored on the result so
        ``result.metrics.snapshot(memory=result.memory)`` exports the
        whole framework execution.

        ``supervised`` turns on fault-tolerant execution: ``True`` for
        defaults, or a dict of
        :class:`~repro.resilience.supervisor.PipelineSupervisor` options
        (``chaos``, ``quarantine``, ``guard``, ``checkpoint_every``,
        ``max_restarts``, ...).  The pipeline is then rebuilt and
        replayed across crashes with exactly-once output delivery; the
        supervised outcome rides on ``result.supervised``.

        ``parallel=N`` executes the outputs on up to ``N`` forked worker
        processes instead of one shared pipeline: outputs are assigned
        round-robin and each worker materializes *its* sinks plus the
        (deterministic) partition stage, so every output's stream is
        identical to the shared single-pass run.  A worker death raises
        :class:`~repro.core.errors.WorkerCrashError`.  Mutually
        exclusive with ``supervised`` and ``metrics`` (per-operator
        instrumentation cannot cross the process boundary); the
        assignment and per-worker peaks ride on ``result.parallel``.

        ``memory_budget`` (bytes, or a string like ``"64MB"``) bounds
        every per-path sorter's resident buffer: cold sorted runs spill
        to disk and merge back at punctuation time, and the outputs stay
        byte-identical to the unbudgeted run.  Requires the default
        sorter and a plain single-process run (mutually exclusive with
        ``supervised`` and ``parallel``); per-path spill metrics ride on
        ``result.spill``.

        ``engine`` mirrors ``QueryPlan.run``'s engine selector for API
        uniformity.  A framework run is a multi-output partition network
        of already-composed operators — there is no ``QueryPlan`` left
        to compile — so ``"auto"`` and ``"row"`` both execute the row
        pipeline (``result.engine``/``result.engine_reason`` record the
        choice) and ``"columnar"`` raises
        :class:`~repro.core.errors.QueryBuildError`.
        """
        from repro.core.errors import QueryBuildError

        if engine not in ("auto", "columnar", "row"):
            raise QueryBuildError(
                f"engine must be 'auto', 'columnar', or 'row', not "
                f"{engine!r}"
            )
        if engine == "columnar":
            raise QueryBuildError(
                "engine='columnar' requested but a Streamables run cannot "
                "be compiled: the multi-latency partition network is an "
                "opaque operator DAG (use QueryPlan.run for the fused "
                "columnar path)"
            )
        reason = (
            "engine='row' requested" if engine == "row"
            else "framework runs are an opaque operator DAG"
        )
        budget = None
        if memory_budget is not None:
            from repro.sorting.external import parse_memory_budget

            budget = parse_memory_budget(memory_budget)
            if self._runtime is None or self._runtime["custom_sorter"]:
                raise QueryBuildError(
                    "memory_budget requires the default sorter; this "
                    "Streamables carries a custom sorter factory"
                )
            if supervised:
                raise QueryBuildError(
                    "memory_budget cannot be combined with supervised "
                    "execution; checkpoint budgeted runs through "
                    "resilience.SorterSupervisor instead"
                )
            if parallel:
                raise QueryBuildError(
                    "memory_budget cannot be combined with parallel "
                    "workers; each fork would buffer independently"
                )
        meter = MemoryMeter() if memory_meter is None else memory_meter
        if parallel:
            if supervised:
                raise QueryBuildError(
                    "parallel framework runs cannot be supervised; use "
                    "run(supervised=...) or run(parallel=N), not both"
                )
            if metrics is not None:
                raise QueryBuildError(
                    "metrics instrument a single-process pipeline; "
                    "parallel runs report result.parallel instead"
                )
            result = self._run_parallel(
                self._resolve_parallel(parallel), meter
            )
            result.engine_reason = reason
            return result
        clock = {}
        sink_nodes = [
            QueryNode(
                lambda: LatencyCollector(clock),
                ((stream.node, None),),
                name=f"out[{i}]",
            )
            for i, stream in enumerate(self._outputs)
        ]
        if supervised:
            result = self._run_supervised(
                sink_nodes, clock, meter, metrics,
                {} if supervised is True else dict(supervised),
            )
            result.engine_reason = reason
            return result
        spill = None
        if budget is not None:
            self._runtime["memory_budget"] = budget
            spill_start = len(self._runtime["spill_sorters"])
        try:
            pipeline = Pipeline(sink_nodes)
            # Late-bound: the partition instance exists only after the
            # graph materializes; events flow strictly afterwards.
            clock["partition"] = pipeline.operator_for(self._partition_node)
            if metrics is not None:
                metrics.attach(pipeline)
            pipeline.run(
                self._source.elements(), on_punctuation=meter.sample
            )
            if budget is not None:
                spill = {
                    "memory_budget": budget,
                    "paths": [
                        sorter.spill_doc()
                        for sorter in
                        self._runtime["spill_sorters"][spill_start:]
                    ],
                }
        finally:
            if budget is not None:
                self._runtime["memory_budget"] = None
                created = self._runtime["spill_sorters"][spill_start:]
                del self._runtime["spill_sorters"][spill_start:]
                for sorter in created:
                    sorter.close()
        collectors = [pipeline.operator_for(node) for node in sink_nodes]
        partition = pipeline.operator_for(self._partition_node)
        result = StreamablesResult(
            collectors, partition, meter, self.latencies
        )
        result.metrics = metrics
        result.engine_reason = reason
        result.spill = spill
        return result

    def _run_supervised(self, sink_nodes, clock, meter, metrics, options):
        from repro.resilience.supervisor import PipelineSupervisor

        def build():
            pipeline = Pipeline(sink_nodes)
            clock["partition"] = pipeline.operator_for(self._partition_node)
            return pipeline, [
                pipeline.operator_for(node) for node in sink_nodes
            ]

        supervisor = PipelineSupervisor(
            build, self._source.elements(),
            metrics=metrics, memory=meter, **options,
        )
        outcome = supervisor.run()
        # The last attempt is fully caught up, so its collectors hold the
        # same (verified) events as the exactly-once channels, plus the
        # per-output latency samples.
        result = StreamablesResult(
            outcome.collectors,
            outcome.pipeline.operator_for(self._partition_node),
            meter, self.latencies,
        )
        result.metrics = metrics
        result.supervised = outcome
        return result

    # -- parallel (multi-process) execution --------------------------------

    def _resolve_parallel(self, parallel) -> int:
        """Resolve a ``run(parallel=...)`` value to a worker count.

        Accepts the same spec grammar as ``repro run --parallel``: an
        integer, ``"auto"``, or ``"auto:MIN-MAX"``.  Framework workers
        partition *outputs* (not keys), so there is nothing to resize at
        runtime — ``auto`` simply picks ``clamp(#outputs, MIN, MAX)``,
        which is deterministic and already the effective ceiling
        (``_run_parallel`` never forks more workers than outputs).
        """
        from repro.core.errors import QueryBuildError
        from repro.parallel.autoscale import parse_parallel_spec

        try:
            workers, policy = parse_parallel_spec(parallel)
        except ValueError as exc:
            raise QueryBuildError(str(exc)) from None
        if policy is None:
            return workers
        return max(
            policy.min_workers,
            min(policy.max_workers, len(self._outputs)),
        )

    def _run_parallel(self, workers, meter):
        """One forked worker per output subset; see :meth:`run`.

        Correctness rests on the partition stage being deterministic in
        the ingress sequence alone: :class:`LatenessPartition` routes
        each event to the first tolerating path regardless of which
        downstream sinks are materialized, so a worker that builds only
        output ``i``'s sub-DAG still observes the exact stream output
        ``i`` sees in the shared single-pass pipeline.  Each worker's
        partition ledger must therefore agree; the coordinator verifies
        this before trusting any of them.
        """
        import os
        from multiprocessing import get_context

        from repro.core.errors import QueryBuildError, WorkerCrashError

        if workers < 1:
            raise QueryBuildError("parallel worker count must be >= 1")
        n_outputs = len(self._outputs)
        workers = min(workers, n_outputs)
        assignment = [
            list(range(start, n_outputs, workers))
            for start in range(workers)
        ]
        ctx = get_context("fork")

        def output_worker(indices, conn):
            try:
                worker_meter = MemoryMeter()
                clock = {}
                sink_nodes = [
                    QueryNode(
                        lambda: LatencyCollector(clock),
                        ((self._outputs[i].node, None),),
                        name=f"out[{i}]",
                    )
                    for i in indices
                ]
                pipeline = Pipeline(sink_nodes)
                clock["partition"] = pipeline.operator_for(
                    self._partition_node
                )
                pipeline.run(
                    self._source.elements(),
                    on_punctuation=worker_meter.sample,
                )
                partition = pipeline.operator_for(self._partition_node)
                conn.send({
                    "outputs": {
                        index: {
                            "events": collector.events,
                            "punctuations": collector.punctuations,
                            "completed": collector.completed,
                            "lags": collector.lags,
                        }
                        for index, node in zip(indices, sink_nodes)
                        for collector in (pipeline.operator_for(node),)
                    },
                    "partition": {
                        "routed": list(partition.routed),
                        "dropped": partition.dropped,
                        "high_watermark": partition.high_watermark,
                    },
                    "peak_events": worker_meter.peak_events,
                    "samples": worker_meter.samples,
                })
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:
                    conn.send({"error": exc})
                except Exception:
                    os._exit(1)
            finally:
                conn.close()

        jobs = []
        for worker, indices in enumerate(assignment):
            receiver, sender = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=output_worker, args=(indices, sender), daemon=True
            )
            process.start()
            sender.close()
            jobs.append((worker, indices, process, receiver))

        outputs = {}
        partition_doc = None
        peaks = []
        samples = 0
        try:
            for worker, indices, process, receiver in jobs:
                try:
                    payload = receiver.recv()
                except EOFError:
                    process.join()
                    raise WorkerCrashError(
                        worker, -1, process.exitcode,
                        detail="framework output worker died",
                    ) from None
                process.join()
                if "error" in payload:
                    raise payload["error"]
                outputs.update(payload["outputs"])
                peaks.append(payload["peak_events"])
                samples = max(samples, payload["samples"])
                if partition_doc is None:
                    partition_doc = payload["partition"]
                elif partition_doc != payload["partition"]:
                    raise RuntimeError(
                        "output workers disagree on the partition ledger"
                        " — the source is not deterministic"
                    )
        finally:
            for _, _, process, receiver in jobs:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
                receiver.close()

        collectors = []
        for index in range(n_outputs):
            doc = outputs[index]
            collector = LatencyCollector({})
            collector.events = doc["events"]
            collector.punctuations = doc["punctuations"]
            collector.completed = doc["completed"]
            collector.lags = doc["lags"]
            collectors.append(collector)
        # Workers buffer concurrently, so the run's footprint is the sum
        # of per-worker peaks (an upper bound: peaks need not coincide).
        meter.peak_events = max(meter.peak_events, sum(peaks))
        meter.samples = max(meter.samples, samples)
        ledger = _PartitionLedger(
            self.latencies, partition_doc["routed"],
            partition_doc["dropped"], partition_doc["high_watermark"],
        )
        result = StreamablesResult(collectors, ledger, meter, self.latencies)
        result.parallel = {
            "workers": workers,
            "outputs": n_outputs,
            "assignment": assignment,
            "per_worker_peak_events": peaks,
        }
        return result


class _PartitionLedger:
    """Read-only stand-in for a live :class:`LatenessPartition` when the
    real instances finished inside worker processes: same completeness /
    census surface, reconstructed from their (verified-equal) ledgers."""

    def __init__(self, latencies, routed, dropped, high_watermark):
        self.latencies = list(latencies)
        self.routed = list(routed)
        self.dropped = dropped
        self.high_watermark = high_watermark

    @property
    def total_seen(self) -> int:
        return sum(self.routed) + self.dropped

    def completeness(self, up_to_path: int) -> float:
        total = self.total_seen
        if not total:
            return 1.0
        return sum(self.routed[: up_to_path + 1]) / total


class StreamablesResult:
    """Everything one framework execution produced."""

    def __init__(self, collectors, partition, memory, latencies):
        #: per-output :class:`~repro.engine.operators.sink.Collector`.
        self.collectors = collectors
        #: the live :class:`~repro.framework.partition.LatenessPartition`.
        self.partition = partition
        #: the :class:`~repro.framework.memory.MemoryMeter` (peak sampled).
        self.memory = memory
        self.latencies = latencies
        #: the :class:`~repro.observability.MetricsRegistry` attached to
        #: the run, or ``None`` when observability was off.
        self.metrics = None
        #: the :class:`~repro.resilience.supervisor.SupervisedResult` when
        #: the run was supervised, else ``None``.
        self.supervised = None
        #: parallel-run accounting (worker count, output assignment,
        #: per-worker buffering peaks) when ``run(parallel=N)``, else
        #: ``None``.
        self.parallel = None
        #: per-path spill metrics (``{"memory_budget": ..., "paths":
        #: [...]}``) when ``run(memory_budget=...)``, else ``None``.
        self.spill = None
        #: execution path — framework runs always execute the row
        #: operator pipeline (``engine_reason`` says why); mirrors
        #: ``PlanResult.engine`` / ``PlanResult.reason``.
        self.engine = "row"
        self.engine_reason = None

    def output_events(self, index):
        """Events emitted on the index-th output, in emission order."""
        return self.collectors[index].events

    def completeness(self, index) -> float:
        """Fraction of input events reflected in output ``index``."""
        return self.partition.completeness(index)

    def measured_latency(self, index) -> dict:
        """Observed delivery-lag statistics for output ``index``.

        Available when the run used :class:`LatencyCollector` sinks (the
        default); see its docstring for the lag definition.
        """
        collector = self.collectors[index]
        if not isinstance(collector, LatencyCollector):
            raise TypeError("this run did not measure latency")
        return collector.latency_stats()

    def summary(self) -> dict:
        """Compact record for EXPERIMENTS.md tables."""
        return {
            "latencies": list(self.latencies),
            "outputs": [len(c) for c in self.collectors],
            "routed": list(self.partition.routed),
            "dropped": self.partition.dropped,
            "completeness": [
                self.completeness(i) for i in range(len(self.collectors))
            ],
            "peak_memory_mb": self.memory.peak_mb,
        }
