"""Lateness partitioner (Section V-A, the first stage of Figure 6).

Routes each incoming out-of-order event to the first reorder-latency path
that can still accept it: path ``i`` tolerates events arriving up to
``latencies[i]`` late.  On every incoming (ingress) punctuation the
partitioner advances each path's own punctuation to
``high_watermark - latencies[i]``, so path i's sorter emits with latency
``latencies[i]``.  Events too late even for the last path are dropped and
counted — the completeness ledger behind Table II.
"""

from __future__ import annotations

from repro.engine.operators.base import Operator, PassThrough

__all__ = ["LatenessPartition"]

_NEG_INF = float("-inf")


class LatenessPartition(Operator):
    """Split one disordered stream into per-latency disordered streams.

    The k outputs are exposed as ``out_ports`` (each a PassThrough);
    downstream plans attach one sorting operator per port.  Routing is
    *punctuation-exact*: an event goes to the first path whose last emitted
    punctuation it does not violate, which guarantees no event is ever late
    inside its chosen path.
    """

    def __init__(self, latencies):
        super().__init__()
        latencies = list(latencies)
        if not latencies:
            raise ValueError("at least one reorder latency is required")
        if any(b <= a for a, b in zip(latencies, latencies[1:])):
            raise ValueError("reorder latencies must be strictly increasing")
        if latencies[0] < 0:
            raise ValueError("reorder latencies must be non-negative")
        self.latencies = latencies
        self.out_ports = [PassThrough() for _ in latencies]
        self._path_punctuations = [_NEG_INF] * len(latencies)
        self._high_watermark = _NEG_INF
        #: events routed to each path (Table II's per-latency census).
        self.routed = [0] * len(latencies)
        #: events later than the largest latency, discarded.
        self.dropped = 0

    @property
    def total_seen(self) -> int:
        """All events observed, routed or dropped."""
        return sum(self.routed) + self.dropped

    @property
    def high_watermark(self):
        """Highest event time seen at ingress — the framework's clock."""
        return self._high_watermark

    def on_event(self, event):
        if event.sync_time > self._high_watermark:
            self._high_watermark = event.sync_time
        sync = event.sync_time
        for index, last_punctuation in enumerate(self._path_punctuations):
            if sync > last_punctuation:
                self.routed[index] += 1
                self.out_ports[index].on_event(event)
                return
        self.dropped += 1

    def on_punctuation(self, punctuation):
        """Advance every path's punctuation off the current high watermark.

        The ingress punctuation's own timestamp also counts toward the
        watermark (it promises no earlier events), covering sources that
        punctuate beyond the last event time.
        """
        if punctuation.timestamp > self._high_watermark:
            self._high_watermark = punctuation.timestamp
        if self._high_watermark == _NEG_INF:
            return
        for index, latency in enumerate(self.latencies):
            timestamp = self._high_watermark - latency
            if timestamp > self._path_punctuations[index]:
                self._path_punctuations[index] = timestamp
                self.out_ports[index].advance_to(timestamp)

    def on_flush(self):
        """Release every path completely, then propagate the flush."""
        if self._high_watermark != _NEG_INF:
            for index in range(len(self.latencies)):
                if self._high_watermark > self._path_punctuations[index]:
                    self._path_punctuations[index] = self._high_watermark
                    self.out_ports[index].advance_to(self._high_watermark)
        for port in self.out_ports:
            port.on_flush()

    def completeness(self, up_to_path: int) -> float:
        """Fraction of events captured by paths ``0..up_to_path``."""
        total = self.total_seen
        if not total:
            return 1.0
        return sum(self.routed[: up_to_path + 1]) / total
