"""Execution methods and the latency/completeness/memory audit.

Implements the four methods compared in Section VI-D / Figure 10 /
Table II:

* ``advanced`` — the advanced Impatience framework (PIQ + merge embedded);
* ``basic`` — the basic framework, re-running the full query per output;
* ``min`` — single reorder latency = the smallest (fast, lossy);
* ``max`` — single reorder latency = the largest (complete, slow).

Each run returns a :class:`MethodResult` with wall time, throughput, peak
buffered memory, and the completeness ledger — the raw material for both
Figure 10 and Table II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.disordered import DisorderedStreamable
from repro.framework.queries import PaperQuery

__all__ = ["MethodResult", "run_method", "METHODS", "table2_rows"]

METHODS = ("advanced", "basic", "min", "max")


@dataclass
class MethodResult:
    """Metrics from one (method, dataset, query) execution."""

    method: str
    query: str
    latencies: list
    elapsed_seconds: float
    input_events: int
    output_events: list
    completeness: list
    peak_memory_mb: float
    measured_latency_mean: list

    @property
    def throughput_meps(self) -> float:
        """Input throughput in millions of events per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.input_events / self.elapsed_seconds / 1e6

    @property
    def final_completeness(self) -> float:
        """Completeness of the most complete (last) output."""
        return self.completeness[-1]


def run_method(method, dataset, query: PaperQuery, latencies,
               punctuation_frequency=10_000, sorter=None) -> MethodResult:
    """Execute one method over a dataset and collect its metrics.

    ``latencies`` is the full increasing latency list; the ``min``/``max``
    methods use its first/last element only, exactly as the paper's
    MinLatency/MaxLatency tags do.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected {METHODS}")
    latencies = list(latencies)
    used = {
        "advanced": latencies,
        "basic": latencies,
        "min": latencies[:1],
        "max": latencies[-1:],
    }[method]

    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=punctuation_frequency
    ).tumbling_window(query.window_size)

    if method == "advanced" and len(used) > 1:
        streamables = disordered.to_streamables(
            used, piq=query.piq, merge=query.merge, sorter=sorter
        )
    else:
        # basic / min / max: ordered outputs, full query body per output.
        streamables = disordered.to_streamables(used, sorter=sorter).apply(
            query.body
        )

    start = time.perf_counter()
    result = streamables.run()
    elapsed = time.perf_counter() - start

    return MethodResult(
        method=method,
        query=query.name,
        latencies=used,
        elapsed_seconds=elapsed,
        input_events=result.partition.total_seen,
        output_events=[len(c) for c in result.collectors],
        completeness=[
            result.completeness(i) for i in range(len(result.collectors))
        ],
        peak_memory_mb=result.memory.peak_mb,
        measured_latency_mean=[
            result.measured_latency(i)["mean"]
            for i in range(len(result.collectors))
        ],
    )


def table2_rows(dataset, query, latencies, punctuation_frequency=10_000):
    """Assemble Table II for one dataset: latency spec + completeness."""
    rows = []
    for method in METHODS:
        result = run_method(
            method, dataset, query, latencies, punctuation_frequency
        )
        rows.append(
            {
                "method": method,
                "latencies": result.latencies,
                "completeness": result.final_completeness,
                "measured_latency": [
                    round(v, 1) for v in result.measured_latency_mean
                ],
            }
        )
    return rows
