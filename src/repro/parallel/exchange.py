"""Frame vocabulary of the coordinator <-> worker exchange.

Everything crossing a :class:`~repro.parallel.shm.ShmRing` is one of the
frame kinds below.  Data-plane frames (``DATA``) carry
:class:`~repro.engine.batch.EventBatch` columns packed column-major so
the receiver re-attaches numpy views without touching individual events;
control-plane frames (punctuations, acks, flush/done markers) are small
fixed structs; the escape hatches (``PICKLE``, ``STATS``, ``ERROR``)
carry pickled python objects for row-shaped outputs, metrics
dictionaries, and forwarded exceptions.

Coordinator -> worker:   DATA* (PUNCT | FLUSH | EXPORT | HANDOFF)  …  DONE
Worker -> coordinator:   (DATA | PICKLE | OUTPUNCT)* ACK  …  STATS DONE
                         ERROR at any point (fatal, pickled exception)
                         STATE DONE after EXPORT (rescale retirement)
                         STATE after HANDOFF, then IMPORT resumes it

The ``ACK`` after each input punctuation round carries the ingress
journal offset the round closed at — the coordinator's crash-recovery
watermark (see :class:`~repro.core.errors.WorkerCrashError`) — plus the
worker's post-round buffered row count, the autoscaler's per-shard
backlog signal.

``EXPORT``/``HANDOFF``/``STATE``/``IMPORT`` implement the rescale
barrier: workers that survive the pool change get HANDOFF — ship state
as one pickled STATE frame, stay alive, and receive their re-partitioned
slice back as an IMPORT frame — while workers being retired get EXPORT
and exit cleanly with DONE after their STATE.  Keeping survivors warm
(same process, same rings) makes a rescale cost one state round-trip
plus forks for the *net new* workers only, instead of a full pool
restart (see :mod:`repro.parallel.autoscale`).
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.core.strings import StringColumn
from repro.engine.batch import EventBatch

__all__ = [
    "DATA", "PUNCT", "OUTPUNCT", "ACK", "FLUSH", "PICKLE", "STATS",
    "DONE", "ERROR", "FDATA", "SDATA", "EXPORT", "STATE", "HANDOFF",
    "IMPORT", "KIND_NAMES",
    "write_batch", "read_batch", "write_pickled", "read_pickled",
    "write_float_batch", "read_float_batch",
    "write_string_batch", "read_string_batch",
]

DATA = 1        # packed EventBatch:  u32 n | u32 n_payload_cols | columns
PUNCT = 2       # ingress punctuation: i64 ts | i64 round | i64 journal_off
OUTPUNCT = 3    # worker-emitted punctuation: i64 ts
ACK = 4         # round processed:    i64 round | i64 journal_off
                #                     | i64 buffered_rows
FLUSH = 5       # end of ingress stream (no payload)
PICKLE = 6      # pickled list of output elements (row-shaped plans)
STATS = 7       # pickled worker metrics dict
DONE = 8        # clean worker shutdown (no payload)
ERROR = 9       # pickled exception (fatal)
FDATA = 10      # float-valued rows: u32 n | sync i64[n] | other i64[n]
                #                    | key i64[n] | value f64[n]
SDATA = 11      # EventBatch with string columns:
                #   u32 n | u32 n_payload_cols | u32 n_string_cols
                #   | int columns (DATA layout)
                #   | per string column: u64 arena_len
                #                        | offsets u32[n+1] | arena bytes
                # Arena + offsets travel as raw bytes — no pickling.
EXPORT = 12     # retire for rescale: ship state, then DONE (no payload)
STATE = 13      # pickled executor state export (rescale handoff)
HANDOFF = 14    # ship state for rescale, stay warm for IMPORT (no payload)
IMPORT = 15     # pickled re-partitioned state slice: restore and resume

KIND_NAMES = {
    DATA: "DATA", PUNCT: "PUNCT", OUTPUNCT: "OUTPUNCT", ACK: "ACK",
    FLUSH: "FLUSH", PICKLE: "PICKLE", STATS: "STATS", DONE: "DONE",
    ERROR: "ERROR", FDATA: "FDATA", SDATA: "SDATA", EXPORT: "EXPORT",
    STATE: "STATE", HANDOFF: "HANDOFF", IMPORT: "IMPORT",
}

_BATCH_HEAD = struct.Struct("<II")
_SBATCH_HEAD = struct.Struct("<III")
_FBATCH_HEAD = struct.Struct("<I")
PUNCT_STRUCT = struct.Struct("<qqq")
ACK_STRUCT = struct.Struct("<qqq")
OUTPUNCT_STRUCT = struct.Struct("<q")


def write_batch(ring, batch, pump=None, alive=None) -> None:
    """Enqueue an :class:`EventBatch` as one DATA frame, packing the
    columns straight into the ring's mapped memory (single copy)."""
    n = len(batch)
    n_cols = len(batch.payload_columns)
    size = _BATCH_HEAD.size + EventBatch.packed_size(n, n_cols)

    def fill(view):
        _BATCH_HEAD.pack_into(view, 0, n, n_cols)
        batch.pack_into(view, _BATCH_HEAD.size)

    ring.write(DATA, reserve=(size, fill), pump=pump, alive=alive)


def read_batch(payload, copy=False) -> EventBatch:
    """Attach an :class:`EventBatch` over a DATA frame's payload view."""
    n, n_cols = _BATCH_HEAD.unpack_from(payload, 0)
    return EventBatch.unpack_from(
        payload, n, n_cols, offset=_BATCH_HEAD.size, copy=copy
    )


def write_string_batch(ring, batch, pump=None, alive=None) -> None:
    """Enqueue an :class:`EventBatch` with string columns as one SDATA
    frame: the int columns in DATA layout followed by each string
    column's arena + offsets as raw bytes (single copy, no pickling)."""
    n = len(batch)
    n_cols = len(batch.payload_columns)
    scols = batch.string_columns
    size = (
        _SBATCH_HEAD.size
        + EventBatch.packed_size(n, n_cols)
        + sum(col.packed_size() for col in scols)
    )

    def fill(view):
        _SBATCH_HEAD.pack_into(view, 0, n, n_cols, len(scols))
        offset = _SBATCH_HEAD.size
        offset += batch.pack_into(view, offset)
        for col in scols:
            offset = col.pack_into(view, offset)

    ring.write(SDATA, reserve=(size, fill), pump=pump, alive=alive)


def read_string_batch(payload, copy=False) -> EventBatch:
    """Decode an SDATA frame back into an :class:`EventBatch`.

    The int columns honor ``copy`` exactly like :func:`read_batch`;
    string arenas are always copied out of the ring slot (``bytes``
    objects cannot alias mapped ring memory safely)."""
    n, n_cols, n_scols = _SBATCH_HEAD.unpack_from(payload, 0)
    offset = _SBATCH_HEAD.size
    batch = EventBatch.unpack_from(payload, n, n_cols, offset=offset,
                                   copy=copy)
    offset += EventBatch.packed_size(n, n_cols)
    scols = []
    for _ in range(n_scols):
        col, offset = StringColumn.unpack_from(payload, n, offset)
        scols.append(col)
    batch.string_columns = scols
    return batch


def write_float_batch(ring, sync, other, keys, values, pump=None,
                      alive=None) -> None:
    """Enqueue float-valued output rows as one FDATA frame.

    Native float64 columns over the wire: the exact avg-aggregate hot
    path that used to ride pickled element lists.  ``values`` round-trip
    bit-exactly (IEEE doubles both sides)."""
    n = int(sync.size)
    size = _FBATCH_HEAD.size + 8 * 4 * n

    def fill(view):
        _FBATCH_HEAD.pack_into(view, 0, n)
        offset = _FBATCH_HEAD.size
        for column, dtype in (
            (sync, np.int64), (other, np.int64),
            (keys, np.int64), (values, np.float64),
        ):
            out = np.frombuffer(view, dtype=dtype, count=n, offset=offset)
            out[:] = column
            offset += 8 * n

    ring.write(FDATA, reserve=(size, fill), pump=pump, alive=alive)


def read_float_batch(payload):
    """Decode an FDATA frame into ``(sync, other, keys, values)`` arrays
    (copied out of the ring slot)."""
    (n,) = _FBATCH_HEAD.unpack_from(payload, 0)
    offset = _FBATCH_HEAD.size
    columns = []
    for dtype in (np.int64, np.int64, np.int64, np.float64):
        columns.append(
            np.frombuffer(payload, dtype=dtype, count=n, offset=offset)
            .copy()
        )
        offset += 8 * n
    return tuple(columns)


def write_pickled(ring, kind, obj, pump=None, alive=None) -> None:
    """Enqueue a pickled object frame (PICKLE / STATS / ERROR)."""
    ring.write(kind, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
               pump=pump, alive=alive)


def read_pickled(payload):
    """Decode a pickled frame payload (copies out of the ring first)."""
    return pickle.loads(bytes(payload))
