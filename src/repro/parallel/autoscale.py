"""Adaptive sizing of the shard worker pool.

The parallel runtime executes a fixed ``--parallel N`` pool; a bursty
workload either over-provisions cores all day or falls behind at peak.
This module closes the loop: the coordinator already observes, every
punctuation round, exactly the disorder-aware signals that predict
whether the pool is too small or too large —

* **ring backpressure** — time the coordinator spent blocked writing
  into worker input rings (:attr:`ShmRing.stall_s`); rising stall means
  workers cannot keep up with routing,
* **per-shard backlog** — the post-round ``buffered`` row count each
  worker reports in its widened ACK frame; the sorters' impatience
  buffers growing round-over-round means punctuation-driven release is
  losing ground,
* **routed volume and skew** — events routed per round and their
  distribution over shards.

:class:`AutoscalePolicy` is a deliberately boring hysteresis controller
over those signals: grow one worker when per-worker volume (or stall
ratio) crosses the high watermark, shrink one when it falls below the
low watermark, with a cooldown between applied decisions so transient
spikes don't thrash the pool.  It is a *pure function of the observed
signal trace*: same signals in, same :class:`ScaleDecision`\\ s out —
which is what lets the supervisor journal decisions and replay them
deterministically after a crash (see
:mod:`repro.resilience.parallel`).

The policy only decides; the coordinator executes the decision at a
punctuation barrier (drain rings, export per-shard sorter + kernel
state, re-partition keys with the same ``stable_key_hash`` modulo the
new pool size, fork/retire workers — state moves by handoff, nothing is
reprocessed).  See ``docs/parallelism.md`` for the barrier protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RoundSignals",
    "ScaleDecision",
    "AutoscalePolicy",
    "parse_parallel_spec",
]


@dataclass(frozen=True)
class RoundSignals:
    """One punctuation round's telemetry, as the coordinator saw it.

    ``round`` is the cumulative punctuation index (monotone across
    rescales), ``stall_s`` the coordinator's input-ring write-stall
    time accrued during the round, ``buffered`` the per-shard sorter
    backlog reported in each worker's ACK.
    """

    round: int
    workers: int
    events: int
    per_shard: tuple
    buffered: tuple
    stall_s: float
    wall_s: float

    @property
    def events_per_worker(self) -> float:
        return self.events / max(1, self.workers)

    @property
    def stall_ratio(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.stall_s / self.wall_s

    @property
    def skew(self) -> float:
        """max/mean routed events across shards (1.0 = perfectly even)."""
        if not self.per_shard or not self.events:
            return 1.0
        return max(self.per_shard) * self.workers / self.events

    def as_doc(self) -> dict:
        return {
            "round": self.round,
            "workers": self.workers,
            "events": self.events,
            "per_shard": list(self.per_shard),
            "buffered": list(self.buffered),
            "stall_s": round(self.stall_s, 6),
            "wall_s": round(self.wall_s, 6),
        }


@dataclass(frozen=True)
class ScaleDecision:
    """A policy verdict: resize the pool to ``workers`` at the next
    punctuation barrier.  ``round`` is the signal round that triggered
    it; ``reason`` is a short human string for the snapshot."""

    round: int
    workers: int
    reason: str

    def as_doc(self) -> dict:
        return {
            "round": self.round,
            "workers": self.workers,
            "reason": self.reason,
        }


class AutoscalePolicy:
    """Hysteresis controller with cooldown over per-round signals.

    Grow (by one worker) when per-worker routed volume exceeds ``high``
    or the coordinator's write-stall ratio exceeds ``stall_high``;
    shrink (by one) when per-worker volume falls below ``low`` and
    backlog is drained.  ``cooldown`` rounds must pass after an
    *applied* decision (the coordinator calls :meth:`notify_applied`)
    before the next one — deferred decisions (asymmetric merge tree)
    do not restart the clock.

    Deterministic: holds no clocks and consults no environment, so the
    decision sequence is a pure function of the observed signal trace.
    """

    def __init__(self, min_workers=1, max_workers=4, *, high=4096.0,
                 low=512.0, cooldown=2, stall_high=0.2):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.high = float(high)
        self.low = float(low)
        self.cooldown = int(cooldown)
        self.stall_high = float(stall_high)
        self._since_applied = self.cooldown  # ready immediately
        self.decisions = []                  # every emitted ScaleDecision

    def spec(self) -> dict:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "high": self.high,
            "low": self.low,
            "cooldown": self.cooldown,
            "stall_high": self.stall_high,
        }

    def observe(self, signals: RoundSignals):
        """Consume one round's signals; return a :class:`ScaleDecision`
        or ``None``.  The coordinator may defer an emitted decision
        (e.g. the merge tree isn't at a symmetric barrier yet); only
        :meth:`notify_applied` restarts the cooldown clock."""
        self._since_applied += 1
        if self._since_applied <= self.cooldown:
            return None
        workers = signals.workers
        target = workers
        reason = None
        if signals.stall_ratio > self.stall_high and workers < self.max_workers:
            target = workers + 1
            reason = (f"stall_ratio {signals.stall_ratio:.2f} > "
                      f"{self.stall_high:.2f}")
        elif (signals.events_per_worker > self.high
                and workers < self.max_workers):
            target = workers + 1
            reason = (f"events/worker {signals.events_per_worker:.0f} > "
                      f"high {self.high:.0f}")
        elif (signals.events_per_worker < self.low
                and workers > self.min_workers):
            target = workers - 1
            reason = (f"events/worker {signals.events_per_worker:.0f} < "
                      f"low {self.low:.0f}")
        if target == workers:
            return None
        target = max(self.min_workers, min(self.max_workers, target))
        decision = ScaleDecision(round=signals.round, workers=target,
                                 reason=reason)
        self.decisions.append(decision)
        return decision

    def notify_applied(self, decision: ScaleDecision) -> None:
        """The coordinator applied ``decision``; start the cooldown."""
        self._since_applied = 0


def parse_parallel_spec(spec, *, default_max=4):
    """Parse a ``--parallel`` value into ``(initial_workers, policy)``.

    ``"N"``/``N`` → fixed pool of N, no policy.  ``"auto"`` →
    ``(1, AutoscalePolicy(1, default_max))``.  ``"auto:MIN-MAX"`` →
    ``(MIN, AutoscalePolicy(MIN, MAX))``.  Raises :class:`ValueError`
    on anything else (callers turn that into their usual exit-2 guard).
    """
    if isinstance(spec, int):
        return spec, None
    text = str(spec).strip()
    if not text.startswith("auto"):
        try:
            return int(text), None
        except ValueError:
            raise ValueError(
                f"invalid --parallel spec {spec!r}: expected an integer, "
                "'auto', or 'auto:MIN-MAX'"
            ) from None
    if text == "auto":
        policy = AutoscalePolicy(1, default_max)
        return policy.min_workers, policy
    if not text.startswith("auto:"):
        raise ValueError(
            f"invalid --parallel spec {spec!r}: expected 'auto' or "
            "'auto:MIN-MAX'"
        )
    lo, sep, hi = text[len("auto:"):].partition("-")
    try:
        low, high = int(lo), int(hi)
    except ValueError:
        raise ValueError(
            f"invalid --parallel spec {spec!r}: bounds must be integers "
            "like 'auto:2-6'"
        ) from None
    if not sep or low < 1 or high < low:
        raise ValueError(
            f"invalid --parallel spec {spec!r}: need 1 <= MIN <= MAX"
        )
    policy = AutoscalePolicy(low, high)
    return policy.min_workers, policy
