"""Shard worker process: drain the input ring, run the plan, ship output.

The worker is a frame-driven loop around a plan executor
(:mod:`repro.parallel.plans`).  DATA frames buffer routed ingress rows
into the per-shard sorter; each PUNCT frame advances the shard pipeline
one round and the round's emissions go back out — columnar batches for
kernel plans, pickled element runs for row plans — followed by an ACK
echoing the round number and the ingress-journal offset the coordinator
stamped on the punctuation.  Any exception is pickled into an ERROR
frame so the coordinator can re-raise it with full fidelity (semantic
errors like ``LateEventError`` must surface identically to the
single-process path).

Workers are forked, so the plan object (including arbitrary query
closures) arrives by inheritance, not pickling.

``SIGTERM`` is a *drain* request, not a kill: the coordinator's
``shutdown()`` (and any orchestrator supervising a ``repro serve``
deployment) terminates workers with SIGTERM, and a worker that dies
mid-frame would surface as a :class:`~repro.core.errors.WorkerCrashError`
on the next supervised run.  Instead the handler finishes the frame in
flight, flushes the executor (shipping its final emissions and
punctuation), writes the FLUSH/STATS/DONE epilogue, and exits 0 — the
same wire epilogue as stream completion, so the coordinator cannot tell
a drained worker from a finished one.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

from repro.parallel import exchange
from repro.parallel.shm import RingClosedError

__all__ = ["worker_main"]


class _DrainRequested(BaseException):
    """Raised by the SIGTERM handler to pop a blocking ring read.

    A ``BaseException`` so no intervening ``except Exception`` can
    swallow the drain request; it is only ever raised while the worker
    is parked between frames (``_interruptible``), never mid-write.
    """


def _parent_alive():
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def _ship(out_ring, items):
    for kind, value in items:
        if kind == "batch":
            if value.string_columns:
                exchange.write_string_batch(
                    out_ring, value, alive=_parent_alive
                )
            else:
                exchange.write_batch(out_ring, value, alive=_parent_alive)
        elif kind == "fbatch":
            sync, other, keys, values = value
            exchange.write_float_batch(
                out_ring, sync, other, keys, values, alive=_parent_alive
            )
        elif kind == "elements":
            exchange.write_pickled(
                out_ring, exchange.PICKLE, value, alive=_parent_alive
            )
        elif kind == "punct":
            out_ring.write(
                exchange.OUTPUNCT,
                exchange.OUTPUNCT_STRUCT.pack(int(value)),
                alive=_parent_alive,
            )
        else:  # pragma: no cover - executor contract violation
            raise RuntimeError(f"unknown output item kind {kind!r}")


def _drain(executor, out_ring) -> None:
    """Graceful-shutdown epilogue: flush and emit the completion frames.

    Best-effort by design — the coordinator that sent SIGTERM may have
    already stopped pumping our output ring, so a full ring or a closed
    peer must not turn a clean drain into a non-zero exit.
    """
    try:
        _ship(out_ring, executor.feed_flush())
        out_ring.write(exchange.FLUSH, alive=_parent_alive, timeout=5.0)
        exchange.write_pickled(
            out_ring, exchange.STATS, executor.stats(),
            alive=_parent_alive,
        )
        out_ring.write(exchange.DONE, alive=_parent_alive, timeout=5.0)
    except (RingClosedError, TimeoutError, OSError):
        pass


def worker_main(shard, plan, in_ring, out_ring, fault=None) -> None:
    """Process entry point; returns (exits) after DONE or a fatal error.

    ``fault`` is a test-only ``(crash_flag, after_rounds)`` pair: when
    the shared flag is still set after processing ``after_rounds``
    punctuation rounds, the worker clears it and dies abruptly via
    ``os._exit`` — simulating a hard crash exactly once across restarts.
    """
    state = {"drain": False, "interruptible": False}

    def _on_sigterm(signum, frame):
        state["drain"] = True
        if state["interruptible"]:
            raise _DrainRequested

    # Installed before the executor builds: a terminate() racing worker
    # startup must still drain, not die with the default action.
    signal.signal(signal.SIGTERM, _on_sigterm)
    executor = plan.build_executor(shard)
    rounds = 0
    try:
        while True:
            try:
                state["interruptible"] = True
                if state["drain"]:
                    raise _DrainRequested
                kind, payload = in_ring.read(alive=_parent_alive)
            finally:
                state["interruptible"] = False
            if kind == exchange.DATA:
                # Copy out of the ring: the sorter retains the columns
                # past this frame's slot lifetime.
                executor.feed_batch(exchange.read_batch(payload, copy=True))
            elif kind == exchange.SDATA:
                executor.feed_batch(
                    exchange.read_string_batch(payload, copy=True)
                )
            elif kind == exchange.PICKLE:
                executor.feed_elements(exchange.read_pickled(payload))
            elif kind == exchange.PUNCT:
                ts, round_no, offset = exchange.PUNCT_STRUCT.unpack(
                    payload[:exchange.PUNCT_STRUCT.size]
                )
                _ship(out_ring, executor.feed_punctuation(ts))
                rounds += 1
                if fault is not None:
                    flag, after_rounds = fault
                    if rounds >= after_rounds and flag.value:
                        with flag.get_lock():
                            if flag.value:
                                flag.value = 0
                                os._exit(43)
                out_ring.write(
                    exchange.ACK,
                    exchange.ACK_STRUCT.pack(round_no, offset),
                    alive=_parent_alive,
                )
            elif kind == exchange.FLUSH:
                _ship(out_ring, executor.feed_flush())
                out_ring.write(exchange.FLUSH, alive=_parent_alive)
                exchange.write_pickled(
                    out_ring, exchange.STATS, executor.stats(),
                    alive=_parent_alive,
                )
                out_ring.write(exchange.DONE, alive=_parent_alive)
                return
            elif kind == exchange.DONE:
                # Coordinator-initiated early shutdown (error elsewhere).
                return
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected input frame kind {kind}")
    except _DrainRequested:
        # Graceful SIGTERM: finish as if the stream ended here.
        _drain(executor, out_ring)
        return
    except RingClosedError:
        # Coordinator died; nothing to report to.
        return
    except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
        try:
            exchange.write_pickled(
                out_ring, exchange.ERROR, exc, alive=_parent_alive,
            )
        except Exception:
            pass
        os._exit(1)
    finally:
        in_ring.close()
        out_ring.close()
