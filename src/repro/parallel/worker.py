"""Shard worker process: drain the input ring, run the plan, ship output.

The worker is a frame-driven loop around a plan executor
(:mod:`repro.parallel.plans`).  DATA frames buffer routed ingress rows
into the per-shard sorter; each PUNCT frame advances the shard pipeline
one round and the round's emissions go back out — columnar batches for
kernel plans, pickled element runs for row plans — followed by an ACK
echoing the round number and the ingress-journal offset the coordinator
stamped on the punctuation.  Any exception is pickled into an ERROR
frame so the coordinator can re-raise it with full fidelity (semantic
errors like ``LateEventError`` must surface identically to the
single-process path).

Workers are forked, so the plan object (including arbitrary query
closures) arrives by inheritance, not pickling.

``SIGTERM`` is a *drain* request, not a kill: the coordinator's
``shutdown()`` (and any orchestrator supervising a ``repro serve``
deployment) terminates workers with SIGTERM, and a worker that dies
mid-frame would surface as a :class:`~repro.core.errors.WorkerCrashError`
on the next supervised run.  Instead the handler finishes the frame in
flight, flushes the executor (shipping its final emissions and
punctuation), writes the FLUSH/STATS/DONE epilogue, and exits 0 — the
same wire epilogue as stream completion, so the coordinator cannot tell
a drained worker from a finished one.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from repro.parallel import exchange
from repro.parallel.shm import RingClosedError

__all__ = ["worker_main"]


class _DrainRequested(BaseException):
    """Raised by the SIGTERM handler to pop a blocking ring read.

    A ``BaseException`` so no intervening ``except Exception`` can
    swallow the drain request; it is only ever raised while the worker
    is parked between frames (``_interruptible``), never mid-write.
    """


def _parent_alive():
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def _ship(out_ring, items):
    for kind, value in items:
        if kind == "batch":
            if value.string_columns:
                exchange.write_string_batch(
                    out_ring, value, alive=_parent_alive
                )
            else:
                exchange.write_batch(out_ring, value, alive=_parent_alive)
        elif kind == "fbatch":
            sync, other, keys, values = value
            exchange.write_float_batch(
                out_ring, sync, other, keys, values, alive=_parent_alive
            )
        elif kind == "elements":
            exchange.write_pickled(
                out_ring, exchange.PICKLE, value, alive=_parent_alive
            )
        elif kind == "punct":
            out_ring.write(
                exchange.OUTPUNCT,
                exchange.OUTPUNCT_STRUCT.pack(int(value)),
                alive=_parent_alive,
            )
        else:  # pragma: no cover - executor contract violation
            raise RuntimeError(f"unknown output item kind {kind!r}")


def _worker_stats(executor, in_ring, out_ring, t0, cpu0) -> dict:
    """The executor's stats dict enriched with process-level signals.

    Ring wait counters (both directions, this process's side only — the
    counters are process-local after fork), CPU seconds, and wall
    seconds: the numbers the idle-spin fix is measured by, and part of
    the telemetry the autoscaler's snapshot records per epoch.
    """
    stats = executor.stats()
    stats["ring_wait"] = {
        "spins": in_ring.spins + out_ring.spins,
        "parks": in_ring.parks + out_ring.parks,
        "stall_s": round(in_ring.stall_s + out_ring.stall_s, 6),
        "park_s": round(in_ring.park_s + out_ring.park_s, 6),
    }
    stats["cpu_s"] = round(time.process_time() - cpu0, 6)
    stats["wall_s"] = round(time.monotonic() - t0, 6)
    return stats


def _drain(executor, out_ring, stats) -> None:
    """Graceful-shutdown epilogue: flush and emit the completion frames.

    Best-effort by design — the coordinator that sent SIGTERM may have
    already stopped pumping our output ring, so a full ring or a closed
    peer must not turn a clean drain into a non-zero exit.
    """
    try:
        _ship(out_ring, executor.feed_flush())
        out_ring.write(exchange.FLUSH, alive=_parent_alive, timeout=5.0)
        exchange.write_pickled(
            out_ring, exchange.STATS, stats(), alive=_parent_alive,
        )
        out_ring.write(exchange.DONE, alive=_parent_alive, timeout=5.0)
    except (RingClosedError, TimeoutError, OSError):
        pass


def worker_main(shard, plan, in_ring, out_ring, fault=None,
                initial_state=None) -> None:
    """Process entry point; returns (exits) after DONE or a fatal error.

    ``fault`` is a test-only ``(crash_flag, after_rounds)`` pair: when
    the shared flag is still set after processing ``after_rounds``
    punctuation rounds, the worker clears it and dies abruptly via
    ``os._exit`` — simulating a hard crash exactly once across restarts.
    ``after_rounds == -1`` is the rescale sentinel: the worker dies on
    EXPORT/HANDOFF receipt instead, mid-barrier.

    ``initial_state`` is a rescale handoff doc (a re-partitioned slice
    of the retired pool's exported state, see
    :func:`repro.parallel.plans._partition_exported`): restored into
    the executor before the first frame, so the new pool picks up
    exactly where the old one stopped without reprocessing anything.
    """
    state = {"drain": False, "interruptible": False}

    def _on_sigterm(signum, frame):
        state["drain"] = True
        if state["interruptible"]:
            raise _DrainRequested

    # Installed before the executor builds: a terminate() racing worker
    # startup must still drain, not die with the default action.
    signal.signal(signal.SIGTERM, _on_sigterm)
    executor = plan.build_executor(shard)
    if initial_state is not None:
        executor.restore_state(initial_state)
    t0, cpu0 = time.monotonic(), time.process_time()

    def stats():
        return _worker_stats(executor, in_ring, out_ring, t0, cpu0)

    rounds = 0
    try:
        while True:
            try:
                state["interruptible"] = True
                if state["drain"]:
                    raise _DrainRequested
                kind, payload = in_ring.read(alive=_parent_alive)
            finally:
                state["interruptible"] = False
            if kind == exchange.DATA:
                # Copy out of the ring: the sorter retains the columns
                # past this frame's slot lifetime.
                executor.feed_batch(exchange.read_batch(payload, copy=True))
            elif kind == exchange.SDATA:
                executor.feed_batch(
                    exchange.read_string_batch(payload, copy=True)
                )
            elif kind == exchange.PICKLE:
                executor.feed_elements(exchange.read_pickled(payload))
            elif kind == exchange.PUNCT:
                ts, round_no, offset = exchange.PUNCT_STRUCT.unpack(
                    payload[:exchange.PUNCT_STRUCT.size]
                )
                _ship(out_ring, executor.feed_punctuation(ts))
                rounds += 1
                if fault is not None:
                    flag, after_rounds = fault
                    if (after_rounds >= 0 and rounds >= after_rounds
                            and flag.value):
                        with flag.get_lock():
                            if flag.value:
                                flag.value = 0
                                os._exit(43)
                out_ring.write(
                    exchange.ACK,
                    exchange.ACK_STRUCT.pack(
                        round_no, offset, executor.buffered()
                    ),
                    alive=_parent_alive,
                )
            elif kind in (exchange.EXPORT, exchange.HANDOFF):
                # Rescale barrier: ship state + stats, then either exit
                # (EXPORT — this shard is being retired) or stay warm
                # for the re-partitioned slice (HANDOFF — same process,
                # same rings, no fork on the coordinator's side).
                if fault is not None:
                    flag, after_rounds = fault
                    if after_rounds == -1 and flag.value:
                        with flag.get_lock():
                            if flag.value:
                                flag.value = 0
                                os._exit(43)
                exchange.write_pickled(
                    out_ring, exchange.STATE,
                    {"state": executor.export_state(), "stats": stats()},
                    alive=_parent_alive,
                )
                if kind == exchange.EXPORT:
                    out_ring.write(exchange.DONE, alive=_parent_alive)
                    return
            elif kind == exchange.IMPORT:
                # The coordinator's answer to HANDOFF: a fresh executor
                # seeded with this shard's slice of the re-partitioned
                # pool state.  Round numbering restarts with the epoch.
                executor = plan.build_executor(shard)
                executor.restore_state(exchange.read_pickled(payload))
                rounds = 0
            elif kind == exchange.FLUSH:
                _ship(out_ring, executor.feed_flush())
                out_ring.write(exchange.FLUSH, alive=_parent_alive)
                exchange.write_pickled(
                    out_ring, exchange.STATS, stats(),
                    alive=_parent_alive,
                )
                out_ring.write(exchange.DONE, alive=_parent_alive)
                return
            elif kind == exchange.DONE:
                # Coordinator-initiated early shutdown (error elsewhere).
                return
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected input frame kind {kind}")
    except _DrainRequested:
        # Graceful SIGTERM: finish as if the stream ended here.
        _drain(executor, out_ring, stats)
        return
    except RingClosedError:
        # Coordinator died; nothing to report to.
        return
    except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
        try:
            exchange.write_pickled(
                out_ring, exchange.ERROR, exc, alive=_parent_alive,
            )
        except Exception:
            pass
        os._exit(1)
    finally:
        in_ring.close()
        out_ring.close()
