"""The parallel coordinator: route, exchange, and k-way ordered merge.

``run_parallel`` executes a key-local query over a disordered ingress
stream on ``workers`` forked shard processes:

    ingress ──route by stable_key_hash──► per-shard column buffers
            ──DATA/PUNCT frames over ShmRings──► workers (sort + query)
            ◄──output batches / punctuations / ACKs──
            ──balanced merge tree──► one ordered output stream

The merge stage replays the exact single-process semantics of
:func:`repro.engine.sharded.shard_disordered`: shard outputs are pushed,
in shard order per punctuation round, through a balanced tree of *real*
:class:`~repro.engine.operators.union.Union` operators (built with the
same :func:`~repro.engine.sharded.balanced_merge` shape), so the merged
events **and** the punctuation sequence are byte-identical to the
single-process plan.  When a round is *symmetric* — every shard emitted
the same punctuation and the tree holds no buffered events — the
coordinator takes a fast path instead: the shards' round outputs are
k-way merged in one vectorized stable sort keyed on
``(sync_time, shard)`` so ties resolve exactly as the union tree's
favor-left rule does.
Asymmetric rounds (skewed clamped watermarks, late-policy effects) fall
back to the operator tree, whose state the fast path keeps in sync.

Crash handling: every blocking ring operation watches the peer process;
a dead worker surfaces as :class:`~repro.core.errors.WorkerCrashError`
carrying the shard and the last *acknowledged* ingress-journal offset,
which :mod:`repro.resilience.parallel` uses for supervised replay.
"""

from __future__ import annotations

import time
from multiprocessing import get_context

import numpy as np

from repro.core.errors import (
    LateEventError,
    QueryBuildError,
    WorkerCrashError,
)
from repro.core.late import LatePolicy
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation, is_punctuation
from repro.engine.operators.base import PassThrough
from repro.engine.operators.union import Union
from repro.engine.sharded import (
    balanced_merge,
    stable_key_hash,
    stable_key_hash_array,
)
from repro.engine.stream import Streamable
from repro.parallel import exchange, shm
from repro.parallel.shm import RingClosedError, ShmRing
from repro.parallel.worker import worker_main

__all__ = ["run_parallel", "ParallelResult"]

_NEG_INF = float("-inf")


class ParallelResult:
    """Merged output stream plus runtime accounting.

    Mirrors the :class:`~repro.engine.operators.sink.Collector` surface
    (``events``, ``punctuations``, ``completed``, ``sync_times``,
    ``payloads``) so equivalence tests compare it directly against
    ``.collect()`` results, and adds ``elements`` (the exact interleaved
    output stream) and the ``parallel`` accounting dict the
    observability snapshot embeds.
    """

    def __init__(self, events, punctuations, completed, parallel,
                 elements=None):
        self.events = events
        self.punctuations = punctuations
        self.completed = completed
        self.parallel = parallel
        self.elements = elements

    @property
    def sync_times(self):
        return [event.sync_time for event in self.events]

    @property
    def payloads(self):
        return [event.payload for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class _OutputSink:
    """Terminal sink: splits the merged stream into ``events`` /
    ``punctuations`` (Collector-compatible), keeps the exact
    interleaving in ``elements``, and forwards every element to an
    optional ``deliver`` callback (the supervised exactly-once hook)."""

    def __init__(self, deliver=None):
        self.events = []
        self.punctuations = []
        self.elements = []
        self.completed = False
        self._deliver = deliver

    def on_event(self, event):
        self.events.append(event)
        self.elements.append(event)
        if self._deliver is not None:
            self._deliver(event)

    def on_punctuation(self, punctuation):
        self.punctuations.append(punctuation.timestamp)
        self.elements.append(punctuation)
        if self._deliver is not None:
            self._deliver(punctuation)

    def on_flush(self):
        self.completed = True

    @property
    def watermark(self):
        """The output stream's watermark: the last merged punctuation
        (``-inf`` before the first) — the restore point a rescaled
        pool's kernels and merge tree are re-armed at."""
        return self.punctuations[-1] if self.punctuations else _NEG_INF


class _MergeTree:
    """Balanced tree of live Union operators + symmetric-round fast path."""

    def __init__(self, shards, deliver=None, sink=None):
        self.shards = shards
        self.leaves = [PassThrough() for _ in range(shards)]
        # A rescale rebuilds the tree for the new pool width but keeps
        # feeding the same sink: the output stream is continuous across
        # pool generations.
        self.sink = _OutputSink(deliver) if sink is None else sink
        self.unions = []
        if shards == 1:
            self.leaves[0].add_downstream(self.sink)
        else:
            def combine(left, right):
                union = Union()
                left.add_downstream(union.ports[0])
                right.add_downstream(union.ports[1])
                self.unions.append(union)
                return union

            root = balanced_merge(self.leaves, combine)
            root.add_downstream(self.sink)
        self._watermark = _NEG_INF

    def symmetric(self) -> bool:
        """True when the tree state is fully described by one watermark:
        no buffered events anywhere and all node watermarks equal."""
        w = self._watermark
        return all(
            union.buffered_count() == 0
            and union._watermarks[0] == union._watermarks[1] == w
            and union._emitted_watermark == w
            for union in self.unions
        )

    def _sync_state(self, watermark) -> None:
        """Record the fast path's effect on the live operator tree."""
        self._watermark = watermark
        for union in self.unions:
            union._watermarks = [watermark, watermark]
            union._emitted_watermark = watermark

    def push_round(self, shard_chunks, allow_fast=True) -> bool:
        """Feed one punctuation round (``shard_chunks[i]`` = shard *i*'s
        output elements, events then an optional trailing punctuation).
        Returns ``True`` when the Huffman fast path handled the round."""
        puncts = set()
        uniform = True
        for chunk in shard_chunks:
            if chunk and is_punctuation(chunk[-1]):
                puncts.add(chunk[-1].timestamp)
            else:
                uniform = False
        if (
            allow_fast and uniform and len(puncts) == 1 and self.unions
            and self.symmetric()
        ):
            watermark = puncts.pop()
            merged = self._fast_merge(shard_chunks, watermark)
            if merged is not None:
                sink = self.sink
                for event in merged:
                    sink.on_event(event)
                if watermark > self._watermark:
                    sink.on_punctuation(Punctuation(watermark))
                    self._sync_state(watermark)
                return True
        self._push_tree(shard_chunks)
        if self.unions:
            self._watermark = max(
                self._watermark, self.unions[-1]._emitted_watermark
            )
        return False

    def _fast_merge(self, shard_chunks, watermark):
        """The round's events in ``(sync, shard)`` order, or ``None`` if
        the round is not fast-mergeable after all.

        The vetting enforces what makes ``(sync, shard)`` order provably
        equal to the union tree's output: every event strictly above the
        previous uniform watermark (an ADJUST-policy re-opened window
        can emit below it, and the tree interleaves such an event with
        *buffer-arrival* order, not shard order), none above the new
        watermark (it would stay buffered in the tree), and each chunk
        ascending (the merge's run contract).  Both the vetting and the
        merge are vectorized: concatenating the chunks in shard order
        and stable-sorting by sync *is* the keyed merge, because events
        from different shards never compare equal on ``(sync, shard)``
        and within-shard order is preserved by stability."""
        previous = self._watermark
        events = []
        syncs = []
        for chunk in shard_chunks:
            body = chunk[:-1]
            s = np.fromiter(
                (event.sync_time for event in body), np.int64, len(body)
            )
            if len(s) and (
                int(s[0]) <= previous or int(s[-1]) > watermark
                or not (s[1:] >= s[:-1]).all()
                or (s <= previous).any() or (s > watermark).any()
            ):
                return None
            events.extend(body)
            syncs.append(s)
        if not events:
            return events
        order = np.argsort(np.concatenate(syncs), kind="stable")
        return [events[i] for i in order]

    def _push_tree(self, shard_chunks) -> None:
        for shard, chunk in enumerate(shard_chunks):
            leaf = self.leaves[shard]
            for element in chunk:
                if is_punctuation(element):
                    leaf.on_punctuation(element)
                else:
                    leaf.on_event(element)

    def flush(self, shard_tails) -> None:
        self._push_tree(shard_tails)
        for leaf in self.leaves:
            leaf.on_flush()


class _WorkerHandle:
    def __init__(self, ctx, shard, plan, ring_capacity, fault,
                 initial_state=None):
        self.shard = shard
        self.in_ring = ShmRing(ring_capacity)
        self.out_ring = ShmRing(ring_capacity)
        worker_fault = None
        if fault is not None and fault[0] == shard:
            worker_fault = (fault[2], fault[1])
        # initial_state rides the fork, not a pickle: numpy views and
        # kernel partials arrive by inheritance like the plan itself.
        self.process = ctx.Process(
            target=worker_main,
            args=(shard, plan, self.in_ring, self.out_ring, worker_fault,
                  initial_state),
            daemon=True,
        )
        self.acked_offset = -1
        self.acked_rounds = 0
        self.buffered = 0       # sorter backlog from the last ACK
        self.pending = []       # frames since the last ACK
        self.rounds = []        # per-round element lists, ACK-delimited
        self.tail = None        # post-FLUSH elements
        self.stats = None
        self.state = None       # STATE payload (rescale retirement)
        self.done = False

    def crash_error(self) -> WorkerCrashError:
        return WorkerCrashError(
            self.shard, self.acked_offset, self.process.exitcode
        )


class _Coordinator:
    def __init__(self, plan, workers, batch_size, ring_capacity, fault,
                 merge, deliver, autoscale=None, rescale_schedule=None):
        if workers < 1:
            raise QueryBuildError("workers must be >= 1")
        if merge not in ("auto", "tree"):
            raise QueryBuildError("merge must be 'auto' or 'tree'")
        if autoscale is not None and not getattr(
            plan, "rescalable", False
        ):
            raise QueryBuildError(
                "plan is not rescalable: "
                + (getattr(plan, "rescale_reason", None)
                   or "no rescale support")
            )
        self.plan = plan
        self.workers = workers
        self.batch_size = batch_size
        self.ring_capacity = ring_capacity
        self.fault = fault
        self.allow_fast = merge == "auto"
        self.deliver = deliver
        self._ctx = get_context("fork")
        ctx = self._ctx
        self.handles = [
            _WorkerHandle(ctx, shard, plan, ring_capacity, fault)
            for shard in range(workers)
        ]
        self.tree = _MergeTree(workers, deliver)
        self.rounds_sent = 0     # epoch-local (resets at each rescale)
        self.total_rounds = 0    # cumulative across pool generations
        self.offset = 0          # ingress journal offset (elements seen)
        self._buffers = [[] for _ in range(workers)]
        # -- autoscale state -------------------------------------------
        self.policy = autoscale
        # The supervisor shares one mutable schedule across attempts:
        # the prefix recorded before a crash replays verbatim (no policy
        # consultation), live decisions append past the horizon.
        self.schedule = rescale_schedule if rescale_schedule is not None \
            else []
        self._replay_until = len(self.schedule)
        self._replay_idx = 0
        self._pending_target = None   # deferred decision's worker count
        self._routed = [0] * workers  # events routed this round, by shard
        self._stall_prev = 0.0
        self._round_t0 = time.monotonic()
        self.signals = []             # RoundSignals trace (capped)
        self.signals_dropped = 0
        self.deferred_rounds = 0
        self.epochs = []              # retired pool records
        self.worker_seconds = 0.0
        self.initial_workers = workers
        self._scalar_payload = bool(getattr(
            plan, "scalar_output",
            isinstance(getattr(plan, "agg", None), str),
        ))
        # RAISE determinism: which worker's LateEventError reaches the
        # coordinator first is a scheduling race, but lateness itself is
        # a global property of the journal order plus the broadcast
        # punctuations — so for plans that expose their late policy the
        # coordinator detects the *first* late element at route time,
        # before any worker sees it, and raises exactly what the
        # single-process path would.
        self._guard = (
            getattr(plan, "late_policy", None) is LatePolicy.RAISE
            and isinstance(getattr(plan, "window", None), int)
        )
        self._guard_pre = getattr(plan, "align", "post") == "pre"
        self._guard_window = getattr(plan, "window", 1)
        self._guard_wm = None
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_sent_by_kind = {}
        self.frames_received_by_kind = {}
        self.merged_rounds = 0        # epoch-local, like rounds_sent
        self.total_merged_rounds = 0  # cumulative across generations
        self.fast_rounds = 0

    def _note_sent(self, kind) -> None:
        name = exchange.KIND_NAMES.get(kind, str(kind))
        self.frames_sent_by_kind[name] = (
            self.frames_sent_by_kind.get(name, 0) + 1
        )
        self.frames_sent += 1

    # -- output-side pumping ----------------------------------------------

    def _pump_one(self, handle) -> bool:
        """Drain at most one frame from a worker's output ring."""
        frame = handle.out_ring.try_read()
        if frame is None:
            return False
        kind, payload = frame
        self.frames_received += 1
        name = exchange.KIND_NAMES.get(kind, str(kind))
        self.frames_received_by_kind[name] = (
            self.frames_received_by_kind.get(name, 0) + 1
        )
        if kind == exchange.DATA:
            batch = exchange.read_batch(payload, copy=True)
            sync = batch.sync_times.tolist()
            if self._scalar_payload:
                payloads = batch.payload_columns[0].tolist()
            else:
                cols = [col.tolist() for col in batch.payload_columns]
                payloads = (
                    list(zip(*cols)) if cols else [()] * len(sync)
                )
            handle.pending.extend(map(
                Event, sync, batch.other_times.tolist(),
                batch.keys.tolist(), payloads,
            ))
        elif kind == exchange.SDATA:
            batch = exchange.read_string_batch(payload, copy=True)
            sync = batch.sync_times.tolist()
            cols = [col.tolist() for col in batch.payload_columns]
            cols.extend(col.tolist() for col in batch.string_columns)
            payloads = list(zip(*cols)) if cols else [()] * len(sync)
            handle.pending.extend(map(
                Event, sync, batch.other_times.tolist(),
                batch.keys.tolist(), payloads,
            ))
        elif kind == exchange.FDATA:
            sync, other, keys, values = exchange.read_float_batch(payload)
            handle.pending.extend(map(
                Event, sync.tolist(), other.tolist(), keys.tolist(),
                values.tolist(),
            ))
        elif kind == exchange.PICKLE:
            handle.pending.extend(exchange.read_pickled(payload))
        elif kind == exchange.OUTPUNCT:
            (ts,) = exchange.OUTPUNCT_STRUCT.unpack(
                payload[: exchange.OUTPUNCT_STRUCT.size]
            )
            handle.pending.append(Punctuation(ts))
        elif kind == exchange.ACK:
            round_no, offset, buffered = exchange.ACK_STRUCT.unpack(
                payload[: exchange.ACK_STRUCT.size]
            )
            if round_no != handle.acked_rounds:  # pragma: no cover
                raise RuntimeError(
                    f"shard {handle.shard} acked round {round_no}, "
                    f"expected {handle.acked_rounds}"
                )
            handle.acked_rounds += 1
            handle.acked_offset = offset
            handle.buffered = buffered
            handle.rounds.append(handle.pending)
            handle.pending = []
        elif kind == exchange.STATE:
            handle.state = exchange.read_pickled(payload)
        elif kind == exchange.FLUSH:
            handle.tail = handle.pending
            handle.pending = []
        elif kind == exchange.STATS:
            handle.stats = exchange.read_pickled(payload)
        elif kind == exchange.DONE:
            handle.done = True
        elif kind == exchange.ERROR:
            raise exchange.read_pickled(payload)
        return True

    def pump(self) -> bool:
        """Drain every worker output ring; ``True`` if anything arrived."""
        crashed = None
        drained = False
        for handle in self.handles:
            while self._pump_one(handle):
                drained = True
            if not handle.done and not handle.process.is_alive():
                # Drain what the worker managed to write before dying.
                while self._pump_one(handle):
                    drained = True
                if not handle.done and crashed is None:
                    crashed = handle
        if crashed is not None:
            # Deliver every round all shards acked before surfacing the
            # crash — supervised replay then verifies (and suppresses)
            # exactly this prefix instead of re-delivering it.
            self.merge_ready_rounds()
            raise crashed.crash_error()
        return drained

    # -- input-side routing ------------------------------------------------

    def _send_batch(self, shard, batch) -> None:
        handle = self.handles[shard]
        if batch.string_columns:
            exchange.write_string_batch(
                handle.in_ring, batch, pump=self.pump,
                alive=handle.process.is_alive,
            )
            self._note_sent(exchange.SDATA)
            return
        exchange.write_batch(
            handle.in_ring, batch, pump=self.pump,
            alive=handle.process.is_alive,
        )
        self._note_sent(exchange.DATA)

    def _flush_buffer(self, shard) -> None:
        rows = self._buffers[shard]
        if not rows:
            return
        self._buffers[shard] = []
        first = rows[0][3]
        arity = len(first) if isinstance(first, tuple) else -1
        uniform = arity >= 0 and all(
            type(payload) is tuple and len(payload) == arity
            and all(type(v) is int for v in payload)
            for _, _, _, payload in rows
        )
        if uniform:
            self._send_batch(shard, EventBatch(
                [r[0] for r in rows], [r[1] for r in rows],
                [r[2] for r in rows],
                [[r[3][c] for r in rows] for c in range(arity)],
            ))
        else:
            handle = self.handles[shard]
            exchange.write_pickled(
                handle.in_ring, exchange.PICKLE,
                [Event(s, o, k, p) for s, o, k, p in rows],
                pump=self.pump, alive=handle.process.is_alive,
            )
            self._note_sent(exchange.PICKLE)

    # -- RAISE-policy late guard -------------------------------------------

    def _guard_scalar(self, sync) -> None:
        wm = self._guard_wm
        if wm is None:
            return
        if self._guard_pre:
            sync -= sync % self._guard_window
        if sync <= wm:
            raise LateEventError(sync, wm)

    def _guard_batch(self, sync_times) -> None:
        wm = self._guard_wm
        if wm is None:
            return
        if self._guard_pre:
            sync_times = sync_times - sync_times % self._guard_window
        mask = sync_times <= wm
        if mask.any():
            raise LateEventError(int(sync_times[np.argmax(mask)]), wm)

    def route_event(self, event) -> None:
        if self._guard:
            self._guard_scalar(event.sync_time)
        shard = (
            stable_key_hash(event.key) % self.workers
            if self.workers > 1 else 0
        )
        buffer = self._buffers[shard]
        buffer.append(
            (event.sync_time, event.other_time, event.key, event.payload)
        )
        self._routed[shard] += 1
        self.offset += 1
        if len(buffer) >= self.batch_size:
            self._flush_buffer(shard)

    def route_batch(self, batch) -> None:
        """Vectorized routing of a whole columnar ingress block."""
        batch = batch.compact()
        n = len(batch)
        if n == 0:
            return
        if self._guard:
            self._guard_batch(batch.sync_times)
        if self.workers == 1:
            self._flush_buffer(0)
            self._send_batch(0, batch)
            self._routed[0] += n
        else:
            shards = stable_key_hash_array(batch.keys) % np.uint64(
                self.workers
            )
            # One stable partition sort instead of a boolean mask (and a
            # fancy-indexed copy per column) per shard: each column is
            # gathered exactly once and every shard's slice is a
            # contiguous view, which write_batch packs without another
            # copy.  Stability preserves within-shard arrival order;
            # shard ids fit uint16, where numpy's stable sort is a
            # linear-time radix pass.
            shards = shards.astype(np.uint16)
            order = np.argsort(shards, kind="stable")
            bounds = np.searchsorted(
                shards[order],
                np.arange(self.workers + 1, dtype=np.uint16),
            )
            sync = batch.sync_times[order]
            other = batch.other_times[order]
            keys = batch.keys[order]
            cols = [col[order] for col in batch.payload_columns]
            # String columns gather through the same permutation; each
            # shard then ships a contiguous slice (rebased offsets, no
            # per-row copies).
            scols = [col.take(order) for col in batch.string_columns]
            for shard in range(self.workers):
                lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                if lo == hi:
                    continue
                self._routed[shard] += hi - lo
                self._flush_buffer(shard)
                self._send_batch(shard, EventBatch(
                    sync[lo:hi], other[lo:hi], keys[lo:hi],
                    [col[lo:hi] for col in cols],
                    string_columns=[col.slice(lo, hi) for col in scols],
                ))
        self.offset += n

    def broadcast_punctuation(self, timestamp) -> None:
        if self._guard:
            wm = int(timestamp)
            if self._guard_pre:
                wm = (wm + 1) - (wm + 1) % self._guard_window - 1
            if self._guard_wm is None or wm > self._guard_wm:
                self._guard_wm = wm
        self.offset += 1
        payload = exchange.PUNCT_STRUCT.pack(
            int(timestamp), self.rounds_sent, self.offset
        )
        for shard, handle in enumerate(self.handles):
            self._flush_buffer(shard)
            handle.in_ring.write(
                exchange.PUNCT, payload, pump=self.pump,
                alive=handle.process.is_alive,
            )
        self.rounds_sent += 1
        self.total_rounds += 1
        self.pump()

    def broadcast_flush(self) -> None:
        for shard, handle in enumerate(self.handles):
            self._flush_buffer(shard)
            handle.in_ring.write(
                exchange.FLUSH, pump=self.pump,
                alive=handle.process.is_alive,
            )

    # -- merge -------------------------------------------------------------

    def merge_ready_rounds(self) -> None:
        while all(
            len(handle.rounds) > self.merged_rounds
            for handle in self.handles
        ):
            chunks = [
                handle.rounds[self.merged_rounds]
                for handle in self.handles
            ]
            if self.tree.push_round(chunks, allow_fast=self.allow_fast):
                self.fast_rounds += 1
            for handle in self.handles:
                handle.rounds[self.merged_rounds] = None  # free memory
            self.merged_rounds += 1
            self.total_merged_rounds += 1

    # -- autoscale ---------------------------------------------------------

    def _collect_signals(self):
        """One round's telemetry, observed right after the punctuation
        broadcast.  ``buffered`` carries each shard's backlog from its
        latest ACK (the precise post-round value once the barrier
        drains); ``stall_s`` is the coordinator's input-ring write-stall
        delta — the backpressure the idle-spin counters expose."""
        from repro.parallel.autoscale import RoundSignals

        now = time.monotonic()
        stall = sum(handle.in_ring.stall_s for handle in self.handles)
        signals = RoundSignals(
            round=self.total_rounds - 1,
            workers=self.workers,
            events=sum(self._routed),
            per_shard=tuple(self._routed),
            buffered=tuple(
                handle.buffered for handle in self.handles
            ),
            stall_s=max(0.0, stall - self._stall_prev),
            wall_s=max(0.0, now - self._round_t0),
        )
        self._stall_prev = stall
        self._round_t0 = now
        self._routed = [0] * self.workers
        self.worker_seconds += signals.wall_s * self.workers
        if len(self.signals) < 2048:
            self.signals.append(signals)
        else:
            self.signals_dropped += 1
        return signals

    def maybe_rescale(self) -> None:
        """Autoscale decision point, once per punctuation round.

        Replays the journaled schedule prefix verbatim (crash recovery:
        the supervisor re-runs the same rescales at the same rounds
        without consulting the policy), then hands live signals to the
        policy.  An emitted decision executes at this barrier when the
        merge tree is symmetric, otherwise it stays pending and retries
        next round (``deferred_rounds`` counts the waits).
        """
        if self.policy is None:
            return
        signals = self._collect_signals()
        round_no = self.total_rounds - 1
        from repro.parallel.autoscale import ScaleDecision

        if self._replay_idx < self._replay_until:
            entry = self.schedule[self._replay_idx]
            if round_no >= entry["round"]:
                self._replay_idx += 1
                self._execute_rescale(entry["workers"])
                self.policy.notify_applied(ScaleDecision(
                    round=entry["round"], workers=entry["workers"],
                    reason="replayed",
                ))
            return
        if self._pending_target is None:
            decision = self.policy.observe(signals)
            if decision is None:
                return
            self._pending_target = decision.workers
        if self._pending_target == self.workers:
            self._pending_target = None
            return
        if not self._barrier_ready():
            self.deferred_rounds += 1
            return
        target = self._pending_target
        self._pending_target = None
        self._execute_rescale(target)
        self.schedule.append(
            {"round": round_no, "workers": target}
        )
        self.policy.notify_applied(ScaleDecision(
            round=round_no, workers=target, reason="applied",
        ))

    def _barrier_drain(self) -> None:
        """Block until every sent round is acked *and* merged."""
        spins = 0
        delay = shm._SPIN_SLEEP
        while not (
            all(
                handle.acked_rounds == self.rounds_sent
                for handle in self.handles
            )
            and self.merged_rounds == self.rounds_sent
        ):
            drained = self.pump()
            self.merge_ready_rounds()
            if drained:
                spins = 0
                delay = shm._SPIN_SLEEP
                continue
            spins += 1
            if spins >= shm._SPIN_FAST:
                time.sleep(delay)
                delay = min(delay * 2, shm._SPIN_SLEEP_MAX)

    def _barrier_ready(self) -> bool:
        """Drain to the punctuation barrier; ``True`` when the merge
        tree is symmetric there (safe to swap pools)."""
        self._barrier_drain()
        return self.tree.symmetric()

    def _execute_rescale(self, new_workers) -> None:
        """Swap the worker pool at a punctuation barrier — warm.

        Protocol: drain every in-flight round, then split the pool.
        Shards that exist in both pools (``0..min(old,new)-1``) get
        HANDOFF — they ship their sorter + kernel state as a STATE
        frame and *stay alive* on their existing rings; shards past the
        new pool size get EXPORT and retire with DONE.  The coordinator
        re-partitions the exported state by ``stable_key_hash`` modulo
        the new pool size, sends each survivor its slice back as an
        IMPORT frame, forks only the net-new shards (their slice rides
        the fork), and rebuilds the merge tree — feeding the same sink —
        synced at the output watermark.  Nothing is reprocessed: state
        moves by checkpoint handoff, and keeping survivors warm makes a
        rescale cost one state round-trip instead of a full pool
        restart.  A worker that dies mid-barrier surfaces as a
        :class:`WorkerCrashError` exactly like any other crash, and
        supervised replay re-executes the recorded rescale.
        """
        self._barrier_drain()
        old = self.handles
        keep = min(self.workers, new_workers)
        survivors, retirees = old[:keep], old[keep:]
        for handle in survivors:
            handle.state = None
            handle.in_ring.write(
                exchange.HANDOFF, pump=self.pump,
                alive=handle.process.is_alive,
            )
            self._note_sent(exchange.HANDOFF)
        for handle in retirees:
            handle.in_ring.write(
                exchange.EXPORT, pump=self.pump,
                alive=handle.process.is_alive,
            )
            self._note_sent(exchange.EXPORT)
        spins = 0
        delay = shm._SPIN_SLEEP
        while not (
            all(handle.state is not None for handle in old)
            and all(handle.done for handle in retirees)
        ):
            drained = self.pump()
            if drained:
                spins = 0
                delay = shm._SPIN_SLEEP
                continue
            spins += 1
            if spins >= shm._SPIN_FAST:
                time.sleep(delay)
                delay = min(delay * 2, shm._SPIN_SLEEP_MAX)
        self.epochs.append({
            "round": self.total_rounds - 1,
            "from_workers": self.workers,
            "to_workers": new_workers,
            "shards": [handle.state["stats"] for handle in old],
        })
        watermark = self.tree.sink.watermark
        out_watermark = None if watermark == _NEG_INF else watermark
        states = self.plan.partition_states(
            [handle.state["state"] for handle in old],
            new_workers, out_watermark,
        )
        for shard, handle in enumerate(survivors):
            exchange.write_pickled(
                handle.in_ring, exchange.IMPORT, states[shard],
                pump=self.pump, alive=handle.process.is_alive,
            )
            self._note_sent(exchange.IMPORT)
            # Round numbering (and the merged-round cursor into
            # ``rounds``) restarts with the epoch; the old epoch's
            # entries were merged — and nulled — before the barrier.
            handle.acked_rounds = 0
            handle.buffered = 0
            handle.state = None
            handle.rounds = []
            handle.pending = []
        grown = [
            _WorkerHandle(
                self._ctx, shard, self.plan, self.ring_capacity,
                self.fault, initial_state=states[shard],
            )
            for shard in range(keep, new_workers)
        ]
        for handle in grown:
            handle.process.start()
        # Retirees exit concurrently with the new shards' startup; the
        # joins land after the forks so neither serializes the other.
        for handle in retirees:
            handle.process.join(timeout=5)
            handle.in_ring.unlink()
            handle.out_ring.unlink()
        self.handles = survivors + grown
        self.workers = new_workers
        self._buffers = [[] for _ in range(new_workers)]
        self._routed = [0] * new_workers
        self._stall_prev = 0.0
        self.rounds_sent = 0
        self.merged_rounds = 0
        self.tree = _MergeTree(
            new_workers, self.deliver, sink=self.tree.sink
        )
        self.tree._sync_state(watermark)

    def finish(self):
        # Same hot-then-backoff cadence as the ring poll loops: during
        # the final drain the workers are still computing, and a
        # coordinator spinning at full tilt steals their CPU on
        # oversubscribed hosts.
        spins = 0
        delay = shm._SPIN_SLEEP
        while not all(handle.done for handle in self.handles):
            drained = self.pump()
            self.merge_ready_rounds()
            if drained:
                spins = 0
                delay = shm._SPIN_SLEEP
                continue
            spins += 1
            if spins >= shm._SPIN_FAST:
                time.sleep(delay)
                delay = min(delay * 2, shm._SPIN_SLEEP_MAX)
        self.merge_ready_rounds()
        if any(handle.tail is None for handle in self.handles):
            raise RuntimeError(  # pragma: no cover - protocol violation
                "worker completed without a FLUSH frame"
            )
        self.tree.flush([handle.tail for handle in self.handles])
        return self.tree.sink

    def shutdown(self) -> None:
        for handle in self.handles:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            handle.in_ring.unlink()
            handle.out_ring.unlink()

    def accounting(self) -> dict:
        doc = {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "plan": self.plan.describe(),
            "rounds": self.total_rounds,
            "fast_merge_rounds": self.fast_rounds,
            "tree_merge_rounds": (
                self.total_merged_rounds - self.fast_rounds
            ),
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_sent_by_kind": dict(
                sorted(self.frames_sent_by_kind.items())
            ),
            "frames_received_by_kind": dict(
                sorted(self.frames_received_by_kind.items())
            ),
            "journal_elements": self.offset,
            "shards": [handle.stats for handle in self.handles],
        }
        if self.policy is not None:
            doc["autoscale"] = {
                "enabled": True,
                "policy": self.policy.spec(),
                "initial_workers": self.initial_workers,
                "final_workers": self.workers,
                "decisions": [
                    d.as_doc() for d in self.policy.decisions
                ],
                "applied": list(self.schedule),
                "replayed": self._replay_until,
                "deferred_rounds": self.deferred_rounds,
                "worker_seconds": round(self.worker_seconds, 6),
                "signals": [s.as_doc() for s in self.signals],
                "signals_dropped": self.signals_dropped,
                "epochs": self.epochs,
            }
        return doc


def run_parallel(ingress, plan, workers, *, batch_size=8192,
                 ring_capacity=1 << 20, merge="auto", fault=None,
                 deliver=None, autoscale=None,
                 rescale_schedule=None) -> ParallelResult:
    """Execute ``plan`` over ``ingress`` on ``workers`` shard processes.

    ``ingress`` yields :class:`Event` / :class:`Punctuation` elements
    and/or whole :class:`EventBatch` blocks (columnar ingress routes
    vectorized).  Returns a :class:`ParallelResult` whose output stream
    is byte-identical to the single-process
    ``shard_disordered(stream, query, workers)`` plan over the same
    elements.

    ``merge="tree"`` disables the symmetric-round Huffman fast path
    (differential-testing hook).  ``fault=(shard, after_rounds, flag)``
    injects a one-shot worker crash (tests).  ``deliver(element)``, when
    given, receives every merged output element as soon as its round
    merges — the hook supervised execution uses for exactly-once
    delivery.

    ``autoscale``, an :class:`~repro.parallel.autoscale.AutoscalePolicy`,
    lets the coordinator grow and shrink the pool between punctuation
    rounds (``workers`` is then the initial size); output is
    byte-identical to any fixed pool.  ``rescale_schedule``, a mutable
    list shared by the supervisor across attempts, records applied
    rescales as ``{"round", "workers"}`` docs — a pre-populated prefix
    replays verbatim before the policy takes over (crash recovery).
    """
    coordinator = _Coordinator(
        plan, workers, batch_size, ring_capacity, fault, merge, deliver,
        autoscale=autoscale, rescale_schedule=rescale_schedule,
    )
    try:
        for handle in coordinator.handles:
            handle.process.start()
        for element in ingress:
            if isinstance(element, EventBatch):
                coordinator.route_batch(element)
            elif is_punctuation(element):
                coordinator.broadcast_punctuation(element.timestamp)
                coordinator.merge_ready_rounds()
                coordinator.maybe_rescale()
            else:
                coordinator.route_event(element)
        coordinator.broadcast_flush()
        sink = coordinator.finish()
    except RingClosedError as exc:
        dead = next(
            (h for h in coordinator.handles
             if not h.process.is_alive() and not h.done), None
        )
        if dead is not None:
            coordinator.merge_ready_rounds()
            raise dead.crash_error() from exc
        raise
    finally:
        coordinator.shutdown()

    result = ParallelResult(
        sink.events, sink.punctuations, sink.completed,
        coordinator.accounting(), sink.elements,
    )
    if plan.finalize is not None:
        result = _apply_finalize(result, plan.finalize)
    return result


def _apply_finalize(result, finalize_fn) -> ParallelResult:
    """Run a non-key-local finalize query over the merged stream.

    Non-key-local stages (e.g. a global ``WindowTopK`` over per-group
    aggregates) cannot run inside shard workers; they execute here, on
    the coordinator, over the exact merged element interleaving — the
    same stream they would consume in the single-process plan."""
    finalized = finalize_fn(
        Streamable.from_elements(result.elements)
    ).collect()
    return ParallelResult(
        finalized.events, finalized.punctuations, finalized.completed,
        result.parallel,
    )
