"""The parallel coordinator: route, exchange, and k-way ordered merge.

``run_parallel`` executes a key-local query over a disordered ingress
stream on ``workers`` forked shard processes:

    ingress ──route by stable_key_hash──► per-shard column buffers
            ──DATA/PUNCT frames over ShmRings──► workers (sort + query)
            ◄──output batches / punctuations / ACKs──
            ──balanced merge tree──► one ordered output stream

The merge stage replays the exact single-process semantics of
:func:`repro.engine.sharded.shard_disordered`: shard outputs are pushed,
in shard order per punctuation round, through a balanced tree of *real*
:class:`~repro.engine.operators.union.Union` operators (built with the
same :func:`~repro.engine.sharded.balanced_merge` shape), so the merged
events **and** the punctuation sequence are byte-identical to the
single-process plan.  When a round is *symmetric* — every shard emitted
the same punctuation and the tree holds no buffered events — the
coordinator takes a fast path instead: the shards' round outputs are
k-way merged in one vectorized stable sort keyed on
``(sync_time, shard)`` so ties resolve exactly as the union tree's
favor-left rule does.
Asymmetric rounds (skewed clamped watermarks, late-policy effects) fall
back to the operator tree, whose state the fast path keeps in sync.

Crash handling: every blocking ring operation watches the peer process;
a dead worker surfaces as :class:`~repro.core.errors.WorkerCrashError`
carrying the shard and the last *acknowledged* ingress-journal offset,
which :mod:`repro.resilience.parallel` uses for supervised replay.
"""

from __future__ import annotations

import time
from multiprocessing import get_context

import numpy as np

from repro.core.errors import (
    LateEventError,
    QueryBuildError,
    WorkerCrashError,
)
from repro.core.late import LatePolicy
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation, is_punctuation
from repro.engine.operators.base import PassThrough
from repro.engine.operators.union import Union
from repro.engine.sharded import (
    balanced_merge,
    stable_key_hash,
    stable_key_hash_array,
)
from repro.engine.stream import Streamable
from repro.parallel import exchange, shm
from repro.parallel.shm import RingClosedError, ShmRing
from repro.parallel.worker import worker_main

__all__ = ["run_parallel", "ParallelResult"]

_NEG_INF = float("-inf")


class ParallelResult:
    """Merged output stream plus runtime accounting.

    Mirrors the :class:`~repro.engine.operators.sink.Collector` surface
    (``events``, ``punctuations``, ``completed``, ``sync_times``,
    ``payloads``) so equivalence tests compare it directly against
    ``.collect()`` results, and adds ``elements`` (the exact interleaved
    output stream) and the ``parallel`` accounting dict the
    observability snapshot embeds.
    """

    def __init__(self, events, punctuations, completed, parallel,
                 elements=None):
        self.events = events
        self.punctuations = punctuations
        self.completed = completed
        self.parallel = parallel
        self.elements = elements

    @property
    def sync_times(self):
        return [event.sync_time for event in self.events]

    @property
    def payloads(self):
        return [event.payload for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class _OutputSink:
    """Terminal sink: splits the merged stream into ``events`` /
    ``punctuations`` (Collector-compatible), keeps the exact
    interleaving in ``elements``, and forwards every element to an
    optional ``deliver`` callback (the supervised exactly-once hook)."""

    def __init__(self, deliver=None):
        self.events = []
        self.punctuations = []
        self.elements = []
        self.completed = False
        self._deliver = deliver

    def on_event(self, event):
        self.events.append(event)
        self.elements.append(event)
        if self._deliver is not None:
            self._deliver(event)

    def on_punctuation(self, punctuation):
        self.punctuations.append(punctuation.timestamp)
        self.elements.append(punctuation)
        if self._deliver is not None:
            self._deliver(punctuation)

    def on_flush(self):
        self.completed = True


class _MergeTree:
    """Balanced tree of live Union operators + symmetric-round fast path."""

    def __init__(self, shards, deliver=None):
        self.shards = shards
        self.leaves = [PassThrough() for _ in range(shards)]
        self.sink = _OutputSink(deliver)
        self.unions = []
        if shards == 1:
            self.leaves[0].add_downstream(self.sink)
        else:
            def combine(left, right):
                union = Union()
                left.add_downstream(union.ports[0])
                right.add_downstream(union.ports[1])
                self.unions.append(union)
                return union

            root = balanced_merge(self.leaves, combine)
            root.add_downstream(self.sink)
        self._watermark = _NEG_INF

    def symmetric(self) -> bool:
        """True when the tree state is fully described by one watermark:
        no buffered events anywhere and all node watermarks equal."""
        w = self._watermark
        return all(
            union.buffered_count() == 0
            and union._watermarks[0] == union._watermarks[1] == w
            and union._emitted_watermark == w
            for union in self.unions
        )

    def _sync_state(self, watermark) -> None:
        """Record the fast path's effect on the live operator tree."""
        self._watermark = watermark
        for union in self.unions:
            union._watermarks = [watermark, watermark]
            union._emitted_watermark = watermark

    def push_round(self, shard_chunks, allow_fast=True) -> bool:
        """Feed one punctuation round (``shard_chunks[i]`` = shard *i*'s
        output elements, events then an optional trailing punctuation).
        Returns ``True`` when the Huffman fast path handled the round."""
        puncts = set()
        uniform = True
        for chunk in shard_chunks:
            if chunk and is_punctuation(chunk[-1]):
                puncts.add(chunk[-1].timestamp)
            else:
                uniform = False
        if (
            allow_fast and uniform and len(puncts) == 1 and self.unions
            and self.symmetric()
        ):
            watermark = puncts.pop()
            merged = self._fast_merge(shard_chunks, watermark)
            if merged is not None:
                sink = self.sink
                for event in merged:
                    sink.on_event(event)
                if watermark > self._watermark:
                    sink.on_punctuation(Punctuation(watermark))
                    self._sync_state(watermark)
                return True
        self._push_tree(shard_chunks)
        if self.unions:
            self._watermark = max(
                self._watermark, self.unions[-1]._emitted_watermark
            )
        return False

    def _fast_merge(self, shard_chunks, watermark):
        """The round's events in ``(sync, shard)`` order, or ``None`` if
        the round is not fast-mergeable after all.

        The vetting enforces what makes ``(sync, shard)`` order provably
        equal to the union tree's output: every event strictly above the
        previous uniform watermark (an ADJUST-policy re-opened window
        can emit below it, and the tree interleaves such an event with
        *buffer-arrival* order, not shard order), none above the new
        watermark (it would stay buffered in the tree), and each chunk
        ascending (the merge's run contract).  Both the vetting and the
        merge are vectorized: concatenating the chunks in shard order
        and stable-sorting by sync *is* the keyed merge, because events
        from different shards never compare equal on ``(sync, shard)``
        and within-shard order is preserved by stability."""
        previous = self._watermark
        events = []
        syncs = []
        for chunk in shard_chunks:
            body = chunk[:-1]
            s = np.fromiter(
                (event.sync_time for event in body), np.int64, len(body)
            )
            if len(s) and (
                int(s[0]) <= previous or int(s[-1]) > watermark
                or not (s[1:] >= s[:-1]).all()
                or (s <= previous).any() or (s > watermark).any()
            ):
                return None
            events.extend(body)
            syncs.append(s)
        if not events:
            return events
        order = np.argsort(np.concatenate(syncs), kind="stable")
        return [events[i] for i in order]

    def _push_tree(self, shard_chunks) -> None:
        for shard, chunk in enumerate(shard_chunks):
            leaf = self.leaves[shard]
            for element in chunk:
                if is_punctuation(element):
                    leaf.on_punctuation(element)
                else:
                    leaf.on_event(element)

    def flush(self, shard_tails) -> None:
        self._push_tree(shard_tails)
        for leaf in self.leaves:
            leaf.on_flush()


class _WorkerHandle:
    def __init__(self, ctx, shard, plan, ring_capacity, fault):
        self.shard = shard
        self.in_ring = ShmRing(ring_capacity)
        self.out_ring = ShmRing(ring_capacity)
        worker_fault = None
        if fault is not None and fault[0] == shard:
            worker_fault = (fault[2], fault[1])
        self.process = ctx.Process(
            target=worker_main,
            args=(shard, plan, self.in_ring, self.out_ring, worker_fault),
            daemon=True,
        )
        self.acked_offset = -1
        self.acked_rounds = 0
        self.pending = []       # frames since the last ACK
        self.rounds = []        # per-round element lists, ACK-delimited
        self.tail = None        # post-FLUSH elements
        self.stats = None
        self.done = False

    def crash_error(self) -> WorkerCrashError:
        return WorkerCrashError(
            self.shard, self.acked_offset, self.process.exitcode
        )


class _Coordinator:
    def __init__(self, plan, workers, batch_size, ring_capacity, fault,
                 merge, deliver):
        if workers < 1:
            raise QueryBuildError("workers must be >= 1")
        if merge not in ("auto", "tree"):
            raise QueryBuildError("merge must be 'auto' or 'tree'")
        self.plan = plan
        self.workers = workers
        self.batch_size = batch_size
        self.allow_fast = merge == "auto"
        ctx = get_context("fork")
        self.handles = [
            _WorkerHandle(ctx, shard, plan, ring_capacity, fault)
            for shard in range(workers)
        ]
        self.tree = _MergeTree(workers, deliver)
        self.rounds_sent = 0
        self.offset = 0          # ingress journal offset (elements seen)
        self._buffers = [[] for _ in range(workers)]
        self._scalar_payload = bool(getattr(
            plan, "scalar_output",
            isinstance(getattr(plan, "agg", None), str),
        ))
        # RAISE determinism: which worker's LateEventError reaches the
        # coordinator first is a scheduling race, but lateness itself is
        # a global property of the journal order plus the broadcast
        # punctuations — so for plans that expose their late policy the
        # coordinator detects the *first* late element at route time,
        # before any worker sees it, and raises exactly what the
        # single-process path would.
        self._guard = (
            getattr(plan, "late_policy", None) is LatePolicy.RAISE
            and isinstance(getattr(plan, "window", None), int)
        )
        self._guard_pre = getattr(plan, "align", "post") == "pre"
        self._guard_window = getattr(plan, "window", 1)
        self._guard_wm = None
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_sent_by_kind = {}
        self.frames_received_by_kind = {}
        self.merged_rounds = 0
        self.fast_rounds = 0

    def _note_sent(self, kind) -> None:
        name = exchange.KIND_NAMES.get(kind, str(kind))
        self.frames_sent_by_kind[name] = (
            self.frames_sent_by_kind.get(name, 0) + 1
        )
        self.frames_sent += 1

    # -- output-side pumping ----------------------------------------------

    def _pump_one(self, handle) -> bool:
        """Drain at most one frame from a worker's output ring."""
        frame = handle.out_ring.try_read()
        if frame is None:
            return False
        kind, payload = frame
        self.frames_received += 1
        name = exchange.KIND_NAMES.get(kind, str(kind))
        self.frames_received_by_kind[name] = (
            self.frames_received_by_kind.get(name, 0) + 1
        )
        if kind == exchange.DATA:
            batch = exchange.read_batch(payload, copy=True)
            sync = batch.sync_times.tolist()
            if self._scalar_payload:
                payloads = batch.payload_columns[0].tolist()
            else:
                cols = [col.tolist() for col in batch.payload_columns]
                payloads = (
                    list(zip(*cols)) if cols else [()] * len(sync)
                )
            handle.pending.extend(map(
                Event, sync, batch.other_times.tolist(),
                batch.keys.tolist(), payloads,
            ))
        elif kind == exchange.SDATA:
            batch = exchange.read_string_batch(payload, copy=True)
            sync = batch.sync_times.tolist()
            cols = [col.tolist() for col in batch.payload_columns]
            cols.extend(col.tolist() for col in batch.string_columns)
            payloads = list(zip(*cols)) if cols else [()] * len(sync)
            handle.pending.extend(map(
                Event, sync, batch.other_times.tolist(),
                batch.keys.tolist(), payloads,
            ))
        elif kind == exchange.FDATA:
            sync, other, keys, values = exchange.read_float_batch(payload)
            handle.pending.extend(map(
                Event, sync.tolist(), other.tolist(), keys.tolist(),
                values.tolist(),
            ))
        elif kind == exchange.PICKLE:
            handle.pending.extend(exchange.read_pickled(payload))
        elif kind == exchange.OUTPUNCT:
            (ts,) = exchange.OUTPUNCT_STRUCT.unpack(
                payload[: exchange.OUTPUNCT_STRUCT.size]
            )
            handle.pending.append(Punctuation(ts))
        elif kind == exchange.ACK:
            round_no, offset = exchange.ACK_STRUCT.unpack(
                payload[: exchange.ACK_STRUCT.size]
            )
            if round_no != handle.acked_rounds:  # pragma: no cover
                raise RuntimeError(
                    f"shard {handle.shard} acked round {round_no}, "
                    f"expected {handle.acked_rounds}"
                )
            handle.acked_rounds += 1
            handle.acked_offset = offset
            handle.rounds.append(handle.pending)
            handle.pending = []
        elif kind == exchange.FLUSH:
            handle.tail = handle.pending
            handle.pending = []
        elif kind == exchange.STATS:
            handle.stats = exchange.read_pickled(payload)
        elif kind == exchange.DONE:
            handle.done = True
        elif kind == exchange.ERROR:
            raise exchange.read_pickled(payload)
        return True

    def pump(self) -> bool:
        """Drain every worker output ring; ``True`` if anything arrived."""
        crashed = None
        drained = False
        for handle in self.handles:
            while self._pump_one(handle):
                drained = True
            if not handle.done and not handle.process.is_alive():
                # Drain what the worker managed to write before dying.
                while self._pump_one(handle):
                    drained = True
                if not handle.done and crashed is None:
                    crashed = handle
        if crashed is not None:
            # Deliver every round all shards acked before surfacing the
            # crash — supervised replay then verifies (and suppresses)
            # exactly this prefix instead of re-delivering it.
            self.merge_ready_rounds()
            raise crashed.crash_error()
        return drained

    # -- input-side routing ------------------------------------------------

    def _send_batch(self, shard, batch) -> None:
        handle = self.handles[shard]
        if batch.string_columns:
            exchange.write_string_batch(
                handle.in_ring, batch, pump=self.pump,
                alive=handle.process.is_alive,
            )
            self._note_sent(exchange.SDATA)
            return
        exchange.write_batch(
            handle.in_ring, batch, pump=self.pump,
            alive=handle.process.is_alive,
        )
        self._note_sent(exchange.DATA)

    def _flush_buffer(self, shard) -> None:
        rows = self._buffers[shard]
        if not rows:
            return
        self._buffers[shard] = []
        first = rows[0][3]
        arity = len(first) if isinstance(first, tuple) else -1
        uniform = arity >= 0 and all(
            type(payload) is tuple and len(payload) == arity
            and all(type(v) is int for v in payload)
            for _, _, _, payload in rows
        )
        if uniform:
            self._send_batch(shard, EventBatch(
                [r[0] for r in rows], [r[1] for r in rows],
                [r[2] for r in rows],
                [[r[3][c] for r in rows] for c in range(arity)],
            ))
        else:
            handle = self.handles[shard]
            exchange.write_pickled(
                handle.in_ring, exchange.PICKLE,
                [Event(s, o, k, p) for s, o, k, p in rows],
                pump=self.pump, alive=handle.process.is_alive,
            )
            self._note_sent(exchange.PICKLE)

    # -- RAISE-policy late guard -------------------------------------------

    def _guard_scalar(self, sync) -> None:
        wm = self._guard_wm
        if wm is None:
            return
        if self._guard_pre:
            sync -= sync % self._guard_window
        if sync <= wm:
            raise LateEventError(sync, wm)

    def _guard_batch(self, sync_times) -> None:
        wm = self._guard_wm
        if wm is None:
            return
        if self._guard_pre:
            sync_times = sync_times - sync_times % self._guard_window
        mask = sync_times <= wm
        if mask.any():
            raise LateEventError(int(sync_times[np.argmax(mask)]), wm)

    def route_event(self, event) -> None:
        if self._guard:
            self._guard_scalar(event.sync_time)
        shard = (
            stable_key_hash(event.key) % self.workers
            if self.workers > 1 else 0
        )
        buffer = self._buffers[shard]
        buffer.append(
            (event.sync_time, event.other_time, event.key, event.payload)
        )
        self.offset += 1
        if len(buffer) >= self.batch_size:
            self._flush_buffer(shard)

    def route_batch(self, batch) -> None:
        """Vectorized routing of a whole columnar ingress block."""
        batch = batch.compact()
        n = len(batch)
        if n == 0:
            return
        if self._guard:
            self._guard_batch(batch.sync_times)
        if self.workers == 1:
            self._flush_buffer(0)
            self._send_batch(0, batch)
        else:
            shards = stable_key_hash_array(batch.keys) % np.uint64(
                self.workers
            )
            # One stable partition sort instead of a boolean mask (and a
            # fancy-indexed copy per column) per shard: each column is
            # gathered exactly once and every shard's slice is a
            # contiguous view, which write_batch packs without another
            # copy.  Stability preserves within-shard arrival order;
            # shard ids fit uint16, where numpy's stable sort is a
            # linear-time radix pass.
            shards = shards.astype(np.uint16)
            order = np.argsort(shards, kind="stable")
            bounds = np.searchsorted(
                shards[order],
                np.arange(self.workers + 1, dtype=np.uint16),
            )
            sync = batch.sync_times[order]
            other = batch.other_times[order]
            keys = batch.keys[order]
            cols = [col[order] for col in batch.payload_columns]
            # String columns gather through the same permutation; each
            # shard then ships a contiguous slice (rebased offsets, no
            # per-row copies).
            scols = [col.take(order) for col in batch.string_columns]
            for shard in range(self.workers):
                lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                if lo == hi:
                    continue
                self._flush_buffer(shard)
                self._send_batch(shard, EventBatch(
                    sync[lo:hi], other[lo:hi], keys[lo:hi],
                    [col[lo:hi] for col in cols],
                    string_columns=[col.slice(lo, hi) for col in scols],
                ))
        self.offset += n

    def broadcast_punctuation(self, timestamp) -> None:
        if self._guard:
            wm = int(timestamp)
            if self._guard_pre:
                wm = (wm + 1) - (wm + 1) % self._guard_window - 1
            if self._guard_wm is None or wm > self._guard_wm:
                self._guard_wm = wm
        self.offset += 1
        payload = exchange.PUNCT_STRUCT.pack(
            int(timestamp), self.rounds_sent, self.offset
        )
        for shard, handle in enumerate(self.handles):
            self._flush_buffer(shard)
            handle.in_ring.write(
                exchange.PUNCT, payload, pump=self.pump,
                alive=handle.process.is_alive,
            )
        self.rounds_sent += 1
        self.pump()

    def broadcast_flush(self) -> None:
        for shard, handle in enumerate(self.handles):
            self._flush_buffer(shard)
            handle.in_ring.write(
                exchange.FLUSH, pump=self.pump,
                alive=handle.process.is_alive,
            )

    # -- merge -------------------------------------------------------------

    def merge_ready_rounds(self) -> None:
        while all(
            len(handle.rounds) > self.merged_rounds
            for handle in self.handles
        ):
            chunks = [
                handle.rounds[self.merged_rounds]
                for handle in self.handles
            ]
            if self.tree.push_round(chunks, allow_fast=self.allow_fast):
                self.fast_rounds += 1
            for handle in self.handles:
                handle.rounds[self.merged_rounds] = None  # free memory
            self.merged_rounds += 1

    def finish(self):
        # Same hot-then-backoff cadence as the ring poll loops: during
        # the final drain the workers are still computing, and a
        # coordinator spinning at full tilt steals their CPU on
        # oversubscribed hosts.
        spins = 0
        delay = shm._SPIN_SLEEP
        while not all(handle.done for handle in self.handles):
            drained = self.pump()
            self.merge_ready_rounds()
            if drained:
                spins = 0
                delay = shm._SPIN_SLEEP
                continue
            spins += 1
            if spins >= shm._SPIN_FAST:
                time.sleep(delay)
                delay = min(delay * 2, shm._SPIN_SLEEP_MAX)
        self.merge_ready_rounds()
        if any(handle.tail is None for handle in self.handles):
            raise RuntimeError(  # pragma: no cover - protocol violation
                "worker completed without a FLUSH frame"
            )
        self.tree.flush([handle.tail for handle in self.handles])
        return self.tree.sink

    def shutdown(self) -> None:
        for handle in self.handles:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            handle.in_ring.unlink()
            handle.out_ring.unlink()

    def accounting(self) -> dict:
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "plan": self.plan.describe(),
            "rounds": self.rounds_sent,
            "fast_merge_rounds": self.fast_rounds,
            "tree_merge_rounds": self.merged_rounds - self.fast_rounds,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_sent_by_kind": dict(
                sorted(self.frames_sent_by_kind.items())
            ),
            "frames_received_by_kind": dict(
                sorted(self.frames_received_by_kind.items())
            ),
            "journal_elements": self.offset,
            "shards": [handle.stats for handle in self.handles],
        }


def run_parallel(ingress, plan, workers, *, batch_size=8192,
                 ring_capacity=1 << 20, merge="auto", fault=None,
                 deliver=None) -> ParallelResult:
    """Execute ``plan`` over ``ingress`` on ``workers`` shard processes.

    ``ingress`` yields :class:`Event` / :class:`Punctuation` elements
    and/or whole :class:`EventBatch` blocks (columnar ingress routes
    vectorized).  Returns a :class:`ParallelResult` whose output stream
    is byte-identical to the single-process
    ``shard_disordered(stream, query, workers)`` plan over the same
    elements.

    ``merge="tree"`` disables the symmetric-round Huffman fast path
    (differential-testing hook).  ``fault=(shard, after_rounds, flag)``
    injects a one-shot worker crash (tests).  ``deliver(element)``, when
    given, receives every merged output element as soon as its round
    merges — the hook supervised execution uses for exactly-once
    delivery.
    """
    coordinator = _Coordinator(
        plan, workers, batch_size, ring_capacity, fault, merge, deliver
    )
    try:
        for handle in coordinator.handles:
            handle.process.start()
        for element in ingress:
            if isinstance(element, EventBatch):
                coordinator.route_batch(element)
            elif is_punctuation(element):
                coordinator.broadcast_punctuation(element.timestamp)
                coordinator.merge_ready_rounds()
            else:
                coordinator.route_event(element)
        coordinator.broadcast_flush()
        sink = coordinator.finish()
    except RingClosedError as exc:
        dead = next(
            (h for h in coordinator.handles
             if not h.process.is_alive() and not h.done), None
        )
        if dead is not None:
            coordinator.merge_ready_rounds()
            raise dead.crash_error() from exc
        raise
    finally:
        coordinator.shutdown()

    result = ParallelResult(
        sink.events, sink.punctuations, sink.completed,
        coordinator.accounting(), sink.elements,
    )
    if plan.finalize is not None:
        result = _apply_finalize(result, plan.finalize)
    return result


def _apply_finalize(result, finalize_fn) -> ParallelResult:
    """Run a non-key-local finalize query over the merged stream.

    Non-key-local stages (e.g. a global ``WindowTopK`` over per-group
    aggregates) cannot run inside shard workers; they execute here, on
    the coordinator, over the exact merged element interleaving — the
    same stream they would consume in the single-process plan."""
    finalized = finalize_fn(
        Streamable.from_elements(result.elements)
    ).collect()
    return ParallelResult(
        finalized.events, finalized.punctuations, finalized.completed,
        result.parallel,
    )
