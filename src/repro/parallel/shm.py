"""Single-producer/single-consumer ring buffers over shared memory.

The parallel runtime moves columnar blocks between the coordinator and
its shard workers through ``multiprocessing.shared_memory`` segments —
one ring per direction per worker — instead of pickled per-event
messages.  Each ring is a byte slab:

    [ head : u64 | tail : u64 | data region … ]

``head`` and ``tail`` are monotonically increasing byte counters (the
physical position is ``counter % size``).  Exactly one process writes
``tail`` (the producer) and exactly one writes ``head`` (the consumer),
and both are aligned 8-byte stores, so no lock is needed: a stale read
only makes a peer momentarily conservative, never incorrect.

Frames are contiguous: a ``[len : u32 | kind : u32]`` header followed by
``len`` payload bytes, padded to 8-byte alignment.  A producer that
cannot fit a frame before the physical end of the region writes a
*wrap* marker (``len == 0xFFFFFFFF``) and continues at offset zero, so
consumers never reassemble split frames and numpy can attach views
directly over a frame's payload (see
:meth:`~repro.engine.batch.EventBatch.unpack_from`).

Backpressure is explicit: :meth:`ShmRing.write` spins (with a tiny
sleep) while the ring is full, invoking an optional ``pump`` callback
each iteration — the coordinator passes a closure that drains worker
output rings, which is what makes the full-duplex exchange
deadlock-free.

Waiting has three tiers: a short hot spin, an exponentially backed-off
micro-sleep, and — once the backoff ceiling has been hit a few times —
a *parked* wait (a 10 ms sleep, the closest thing to an event wait an
SPSC shared-memory ring without futexes can offer).  An idle worker
therefore wakes ~100 times a second instead of ~500+, which is what
keeps a drained shard from burning a core while the coordinator routes
other shards' traffic.  Every ring counts its waits (``spins``,
``parks``, ``stall_s``, ``park_s``; process-local after fork) — workers
report them in their STATS frames and the coordinator reads its own
input rings' stall time as the autoscaler's backpressure signal.
"""

from __future__ import annotations

import os
import struct
import time
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmRing", "RingClosedError", "WRAP_MARK"]

_CURSORS = struct.Struct("<QQ")     # head, tail
_HEADER = struct.Struct("<II")      # frame length, frame kind
HEADER_BYTES = _HEADER.size
WRAP_MARK = 0xFFFFFFFF
# Poll loops retry hot a few times, then sleep with exponential backoff.
# The backoff matters on oversubscribed hosts: a peer blocked for a
# while must not keep waking every 200µs and stealing scheduler slices
# from the process that is actually producing.
_SPIN_FAST = 32
_SPIN_SLEEP = 0.0002
_SPIN_SLEEP_MAX = 0.002
# After this many consecutive ceiling-rate sleeps the waiter parks.
_PARK_AFTER = 8
_PARK_SLEEP = 0.01
#: Kill switch for the park tier (``REPRO_RING_PARK=0``), so benchmarks
#: can measure the idle-CPU difference; forked workers inherit the flag.
PARK_ENABLED = os.environ.get("REPRO_RING_PARK", "1") != "0"
_PINNED = []  # segments that could not unmap because views outlive them


class RingClosedError(RuntimeError):
    """The shared-memory segment backing a ring has gone away."""


def _align(n: int) -> int:
    return (n + 7) & ~7


class _RingWait:
    """One blocking operation's spin → backoff → park ladder.

    Created lazily on the first failed attempt, so the uncontended fast
    path costs nothing; counters accumulate on the ring instance
    (process-local after fork — each side counts its own waits).
    """

    __slots__ = ("ring", "spins", "delay", "ceiling", "t0")

    def __init__(self, ring):
        self.ring = ring
        self.spins = 0
        self.delay = _SPIN_SLEEP
        self.ceiling = 0
        self.t0 = time.monotonic()

    def wait(self) -> None:
        ring = self.ring
        self.spins += 1
        ring.spins += 1
        if self.spins < _SPIN_FAST:
            return
        if PARK_ENABLED and self.ceiling >= _PARK_AFTER:
            # Parkable tier: the peer has been quiet long past the
            # backoff ceiling; stop draining its scheduler slices.
            parked = time.monotonic()
            time.sleep(_PARK_SLEEP)
            ring.parks += 1
            ring.park_s += time.monotonic() - parked
            return
        time.sleep(self.delay)
        if self.delay >= _SPIN_SLEEP_MAX:
            self.ceiling += 1
        self.delay = min(self.delay * 2, _SPIN_SLEEP_MAX)

    def done(self) -> None:
        self.ring.stall_s += time.monotonic() - self.t0


class ShmRing:
    """One direction of a coordinator <-> worker exchange channel.

    Create with ``ShmRing(capacity)`` in the owning process; a forked
    child inherits the object and the mapping directly.  ``attach`` by
    name is available for spawn-style contexts.
    """

    def __init__(self, capacity=1 << 20, name=None):
        if name is None:
            size = 1 << max(12, (capacity - 1).bit_length())
            self._shm = shared_memory.SharedMemory(
                create=True, size=_CURSORS.size + size
            )
            self.size = size
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.size = self._shm.size - _CURSORS.size
        # Aligned u64 loads/stores (single instructions, atomic on every
        # platform we run on).  struct with an explicit byte order packs
        # byte-by-byte, so a peer could observe a *torn* cursor — a
        # momentarily huge tail shows the consumer phantom frames, a
        # momentarily huge head shows the producer phantom free space.
        self._cursors = np.frombuffer(
            self._shm.buf, dtype=np.uint64, count=2
        )
        if name is None:
            self._cursors[:] = 0
        self.name = self._shm.name
        self._data_off = _CURSORS.size
        self._owner = name is None
        # Consumer-local: head value to publish on the *next* read, so
        # the payload view returned by the previous read stays valid
        # (the producer only reuses a frame's bytes once head moves).
        self._release = None
        # Wait accounting (see _RingWait; process-local after fork).
        self.spins = 0
        self.parks = 0
        self.stall_s = 0.0
        self.park_s = 0.0

    @classmethod
    def attach(cls, name) -> "ShmRing":
        """Map an existing ring by segment name (spawn contexts)."""
        return cls(name=name)

    # -- cursors -----------------------------------------------------------

    @property
    def _head(self) -> int:
        return int(self._cursors[0])

    @_head.setter
    def _head(self, value) -> None:
        self._cursors[0] = value

    @property
    def _tail(self) -> int:
        return int(self._cursors[1])

    @_tail.setter
    def _tail(self, value) -> None:
        self._cursors[1] = value

    def occupancy(self) -> int:
        """Bytes currently enqueued (approximate across processes)."""
        return self._tail - self._head

    # -- producer ----------------------------------------------------------

    def frame_bytes(self, payload_len: int) -> int:
        """Ring bytes one frame of ``payload_len`` consumes."""
        return _align(HEADER_BYTES + payload_len)

    def try_write(self, kind, payload=b"", reserve=None) -> bool:
        """Enqueue one frame; ``False`` if the ring is too full.

        ``reserve`` (a ``(size, fill)`` pair) supports in-place payload
        construction: ``fill(view)`` writes directly into the ring's
        mapped memory — how :class:`~repro.engine.batch.EventBatch`
        columns are packed with a single copy.
        """
        if reserve is not None:
            payload_len, fill = reserve
        else:
            payload_len, fill = len(payload), None
        needed = self.frame_bytes(payload_len)
        if needed + HEADER_BYTES > self.size:
            raise ValueError(
                f"frame of {payload_len} bytes exceeds ring size {self.size}"
            )
        tail = self._tail
        head = self._head
        pos = tail % self.size
        until_end = self.size - pos
        wrap = until_end < needed
        # A wrap consumes the dead space at the end plus the frame at 0;
        # the wrap marker itself needs a visible header slot.
        total = (until_end + needed) if wrap else needed
        if self.size - (tail - head) < total:
            return False
        buf = self._shm.buf
        base = self._data_off
        if wrap:
            if until_end >= HEADER_BYTES:
                _HEADER.pack_into(buf, base + pos, WRAP_MARK, 0)
            pos = 0
            tail += until_end
        _HEADER.pack_into(buf, base + pos, payload_len, kind)
        start = base + pos + HEADER_BYTES
        if fill is not None:
            fill(buf[start:start + payload_len])
        elif payload_len:
            buf[start:start + payload_len] = payload
        self._tail = tail + needed
        return True

    def write(self, kind, payload=b"", reserve=None, pump=None,
              timeout=30.0, alive=None) -> None:
        """Blocking :meth:`try_write` with backpressure.

        Spins until space frees up, calling ``pump()`` each iteration
        (drain the opposite direction!) and ``alive()`` to detect a dead
        peer.  Raises :class:`RingClosedError` on peer death and
        :class:`TimeoutError` if the ring stays full for ``timeout``
        seconds.
        """
        if self.try_write(kind, payload, reserve):
            return
        deadline = time.monotonic() + timeout
        waiter = _RingWait(self)
        while not self.try_write(kind, payload, reserve):
            if pump is not None:
                pump()
            if alive is not None and not alive():
                raise RingClosedError("peer died with the ring full")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"ring {self.name} full for {timeout:.0f}s "
                    "(consumer stalled?)"
                )
            waiter.wait()
        waiter.done()

    # -- consumer ----------------------------------------------------------

    def try_read(self):
        """Dequeue one frame as ``(kind, payload_view)``; ``None`` if empty.

        The returned memoryview aliases ring memory that is released for
        reuse as soon as this method is called again — callers keeping
        data across reads must copy (or finish attaching/compacting
        numpy views) first.  The release really is deferred: head is
        published on the *next* call, never while the caller may still
        be decoding the view (a producer blocked on a full ring reuses
        freed bytes immediately, so an eager advance would let it
        overwrite a frame mid-read).
        """
        if self._release is not None:
            self._head = self._release
            self._release = None
        head = self._head
        if self._tail - head == 0:
            return None
        pos = head % self.size
        base = self._data_off
        until_end = self.size - pos
        if until_end >= HEADER_BYTES:
            length, kind = _HEADER.unpack_from(self._shm.buf, base + pos)
        else:
            length = WRAP_MARK
        if length == WRAP_MARK:
            head += until_end
            pos = 0
            length, kind = _HEADER.unpack_from(self._shm.buf, base)
        start = base + pos + HEADER_BYTES
        payload = self._shm.buf[start:start + length]
        self._release = head + _align(HEADER_BYTES + length)
        return kind, payload

    def read(self, timeout=30.0, alive=None):
        """Blocking :meth:`try_read`; raises on timeout or dead peer."""
        frame = self.try_read()
        if frame is not None:
            return frame
        deadline = time.monotonic() + timeout
        waiter = _RingWait(self)
        while True:
            frame = self.try_read()
            if frame is not None:
                waiter.done()
                return frame
            if alive is not None and not alive():
                # One more look: the peer may have written, then exited.
                frame = self.try_read()
                if frame is not None:
                    waiter.done()
                    return frame
                raise RingClosedError("peer died with the ring empty")
            if time.monotonic() > deadline:
                raise TimeoutError(f"ring {self.name} empty for {timeout:.0f}s")
            waiter.wait()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (workers call this on exit)."""
        self._cursors = None
        try:
            self._shm.close()
        except BufferError:
            # A live view (a decoded payload, or the locals of an
            # in-flight exception traceback) still aliases the mapping.
            # Pin the segment so those views stay valid and its __del__
            # never runs against exported pointers; the mapping is
            # reclaimed at process exit either way.
            _PINNED.append(self._shm)

    def unlink(self) -> None:
        """Destroy the segment (owner only, after all peers closed)."""
        if self._owner:
            self.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
