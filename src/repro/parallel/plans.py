"""Per-shard execution plans for the parallel runtime.

A *plan* describes what one shard worker does with its routed substream.
Every plan builds an executor obeying one push protocol —
``feed_batch`` / ``feed_elements`` (buffer disordered ingress),
``feed_punctuation`` (advance the shard pipeline, return the round's
output items), ``feed_flush`` (end of stream) — which is exactly the
``sort → query`` stage a shard runs in
:func:`repro.engine.sharded.shard_disordered`; equivalence between the
two is the runtime's core invariant.

Two plan families:

:class:`RowPlan`
    Generic: materializes the routed columns back into
    :class:`~repro.engine.event.Event` rows and drives the *actual*
    engine operators (``Sort`` + whatever ``query_fn`` composes).  Works
    for any key-local query — sessions, coalesce, patterns — because the
    fork start method ships the closure to the worker as-is.

:class:`GroupedAggregatePlan`
    Vectorized: a :class:`~repro.core.columnar.ColumnarImpatienceSorter`
    (timestamps + payload columns, no Event objects) feeding the shared
    :class:`~repro.engine.kernels.GroupedWindowKernel` — any aggregate
    in :data:`~repro.engine.kernels.AGGREGATE_SPECS`
    (count/sum/avg/min/max, plus a coordinator-side top-k) — replicating
    ``Sort → TumblingWindow(w) → GroupedWindowAggregate(agg)``
    byte-for-byte — including the window-close rule (``end - 1 <= T``),
    the clamped forwarded punctuation
    (``min(T', min(open) - 1)``, suppressed unless it advances), and the
    ADJUST-policy subtlety that a late event keeps its *original* sync
    time and may re-open an already-emitted window.

:class:`CompiledShardPlan`
    General and compiled: lowers an arbitrary
    :class:`~repro.engine.planner.QueryPlan` through
    :func:`~repro.engine.compiler.compile_plan` and runs the fused
    kernel pipeline (columnar sort + terminal kernel) inside each shard
    worker — every shape the single-process compiler lowers (grouped
    aggregates, sessions, coalesce, joins, patterns, group-apply,
    distinct, top-k) now runs compiled *and* parallel.  Per-shard
    byte-equivalence with the row operators is the compiler's proven
    invariant, so the merged stream is byte-identical to the same plan
    on :class:`RowPlan` shards.  An optional coordinator-side
    ``finalize`` handles non-key-local tails (global counts, top-k of
    shard top-ks).

Output items a round may produce (worker ships them as frames in this
order): ``("batch", EventBatch)`` for columnar rows,
``("fbatch", (sync, other, keys, values))`` for float-valued rows
(native float64 columns — the avg hot path), ``("elements",
[Event | Punctuation, ...])`` for row-shaped output, and
``("punct", ts)`` for an emitted punctuation.

**Rescalability.**  A plan whose per-shard state is a key-partitioned
columnar sorter plus :class:`GroupedWindowKernel` partials can hand
that state between pools of different sizes at a punctuation barrier
(the autoscaler's grow/shrink, :mod:`repro.parallel.autoscale`):
``plan.rescalable`` says whether, ``plan.rescale_reason`` says why not,
``executor.export_state()`` / ``executor.restore_state()`` move the
state, and ``plan.partition_states()`` re-routes it with the same
``stable_key_hash`` modulo the new worker count.  :class:`RowPlan` is
never rescalable (opaque operator state inside arbitrary queries);
compiled pass-through terminals and per-shard top-k are excluded
(order-sensitive, lossily trimmed state); ungrouped aggregates are
rescalable only under a coordinator ``finalize`` (their per-shard
partials merge, so the per-event stream is pool-shaped — only the
finalized output is pool-invariant).
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation, is_punctuation
from repro.engine.kernels import AGGREGATE_SPECS, GroupedWindowKernel, field
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.operators.base import Operator
from repro.engine.operators.sort import Sort
from repro.engine.stream import Streamable

__all__ = ["RowPlan", "GroupedAggregatePlan", "CompiledShardPlan"]


class _StreamTap(Operator):
    """Sink capturing a pipeline's emissions in order, round by round."""

    def __init__(self):
        super().__init__()
        self.items = []

    def on_event(self, event):
        self.items.append(event)

    def on_punctuation(self, punctuation):
        self.items.append(punctuation)

    def on_flush(self):
        pass

    def take(self):
        items, self.items = self.items, []
        return items


class RowPlan:
    """Run an arbitrary key-local ``query_fn`` on each shard's rows.

    ``sorter`` is an optional zero-argument factory for the per-shard
    online sorter (default: an ``ImpatienceSorter`` keyed on
    ``sync_time``); ``finalize`` is an optional non-key-local query
    applied by the *coordinator* to the merged stream (e.g. a
    ``WindowTopK`` over per-group aggregates); ``pre`` is an optional
    order-insensitive query (``DisorderedStreamable ->
    DisorderedStreamable``, e.g. ``lambda d: d.tumbling_window(w)``)
    run *before* the per-shard sort — the paper's §IV push-down, which
    reduces disorder inside each worker and changes which events count
    as late exactly like it does in the single-process plan.
    """

    rescalable = False
    rescale_reason = (
        "row plans run arbitrary operator graphs whose state cannot be "
        "key-partitioned"
    )

    def __init__(self, query_fn, sorter=None, finalize=None, pre=None):
        self.query_fn = query_fn
        self.sorter = sorter
        self.finalize = finalize
        self.pre = pre

    def build_executor(self, shard):
        return _RowExecutor(self, shard)

    def describe(self):
        return {"plan": "row", "query": getattr(
            self.query_fn, "__name__", "query_fn"
        )}


class _RowExecutor:
    def __init__(self, plan, shard):
        src = source_node(f"shard-{shard}")
        upstream = src
        if plan.pre is not None:
            from repro.engine.disordered import DisorderedStreamable

            upstream = plan.pre(DisorderedStreamable(src, None)).node
        factory = (
            Sort if plan.sorter is None else (lambda: Sort(plan.sorter()))
        )
        sort_node = QueryNode(
            factory, ((upstream, None),), name=f"sort-{shard}"
        )
        out = plan.query_fn(Streamable(sort_node, None))
        tap_node = QueryNode(_StreamTap, ((out.node, None),), name="tap")
        self._pipeline = Pipeline([tap_node])
        self._source = self._pipeline.sources[0]
        self._tap = self._pipeline.operator_for(tap_node)
        self._sort = self._pipeline.operator_for(sort_node)
        self.events_in = 0

    def feed_batch(self, batch):
        for event in batch.events():
            self._source.on_event(event)
        self.events_in += batch.valid_count

    def feed_elements(self, elements):
        for element in elements:
            self._source.on_event(element)
            self.events_in += 1

    def feed_punctuation(self, timestamp):
        self._source.on_punctuation(Punctuation(timestamp))
        return self._round_items()

    def feed_flush(self):
        self._source.on_flush()
        return self._round_items()

    def _round_items(self):
        emitted = self._tap.take()
        items = []
        run = []
        for element in emitted:
            if is_punctuation(element):
                if run:
                    items.append(("elements", run))
                    run = []
                items.append(("punct", element.timestamp))
            else:
                run.append(element)
        if run:
            items.append(("elements", run))
        return items

    def buffered(self) -> int:
        return int(getattr(self._sort.sorter, "buffered", 0) or 0)

    def stats(self):
        sorter = self._sort.sorter
        late = getattr(sorter, "late", None)
        return {
            "plan": "row",
            "engine": "row",
            "events_in": self.events_in,
            "buffered_peak": getattr(
                getattr(sorter, "stats", None), "max_buffered", 0
            ),
            "late_dropped": getattr(late, "dropped", 0),
            "late_adjusted": getattr(late, "adjusted", 0),
        }


class _TopKFinalize:
    """Picklable coordinator stage: ``top_k(k)`` over the merged stream."""

    def __init__(self, k, score_fn=None):
        self.k = k
        self.score_fn = score_fn

    def __call__(self, stream):
        return stream.top_k(self.k, self.score_fn)


class _DecodeKeyFinalize:
    """Picklable coordinator tail: map int64 group codes on the merged
    output back to their dictionary strings (``Event.key`` becomes the
    decoded ``bytes``).  Shards only ever see the codes — int columns on
    the wire, int sorts and folds throughout — so this is purely a
    presentation stage.  Wraps an optional inner finalize (the top-k
    stage) so decoding always runs last."""

    def __init__(self, values, inner=None):
        self.values = list(values)
        self.inner = inner

    def __call__(self, stream):
        if self.inner is not None:
            stream = self.inner(stream)
        return _DecodeKeyCollector(stream, self.values)


class _DecodeKeyCollector:
    """Defers to the wrapped stream's ``collect`` and rewrites keys."""

    def __init__(self, stream, values):
        self._stream = stream
        self._values = values

    def collect(self):
        collected = self._stream.collect()
        values = self._values
        collected.events = [
            Event(e.sync_time, e.other_time, values[e.key], e.payload)
            for e in collected.events
        ]
        return collected


class GroupedAggregatePlan:
    """Vectorized ``tumbling_window(w) |> group_aggregate(agg)``.

    ``agg`` is any of :data:`~repro.engine.kernels.AGGREGATE_SPECS`
    (``"count"``/``"sum"``/``"avg"``/``"min"``/``"max"``) or
    ``"top-k"``; for value aggregates, ``value_column`` picks the
    payload column folded (the row-engine equivalent is
    ``Sum(field(column))``).  ``late_policy`` configures the
    per-shard columnar sorter exactly like the row path's
    ``ImpatienceSorter(late_policy=...)``.

    ``avg`` produces float payloads, so its shards ship row-shaped
    ``("elements", ...)`` output (the pickle frame path) instead of
    int64 column batches.  ``"top-k"`` is the non-key-local shape: each
    shard computes the grouped count and the *coordinator* runs
    ``top_k(k, score_fn)`` over the exact merged interleaving (the
    ``finalize`` hook), since a per-window top-k cannot be decided
    inside one key shard.

    ``align`` places the window's timestamp transformation relative to
    the sort: ``"post"`` (default) replicates
    ``Sort → TumblingWindow → GroupedWindowAggregate``;  ``"pre"``
    replicates the §IV push-down
    ``TumblingWindow → Sort → GroupedWindowAggregate`` — timestamps are
    floored to window starts *before* the lateness check, so events the
    post-sort plan drops as late can still land in their (already
    current) window, exactly like
    ``DisorderedStreamable.tumbling_window(w).to_streamable()``.
    """

    def __init__(self, window, agg="count", value_column=0,
                 late_policy=LatePolicy.DROP, align="post", k=3,
                 score_fn=None, key_dictionary=None):
        if window < 1:
            raise ValueError("window size must be >= 1")
        if agg != "top-k" and agg not in AGGREGATE_SPECS:
            raise ValueError(f"unsupported aggregate {agg!r}")
        if align not in ("post", "pre"):
            raise ValueError(f"align must be 'post' or 'pre', not {align!r}")
        self.window = window
        self.agg = agg
        self.value_column = value_column
        self.late_policy = late_policy
        self.align = align
        self.key_dictionary = key_dictionary
        # top-k shards run the grouped count; the coordinator finalizes.
        self.spec = AGGREGATE_SPECS["count" if agg == "top-k" else agg]
        finalize = _TopKFinalize(k, score_fn) if agg == "top-k" else None
        # String-keyed groups: shards aggregate dictionary codes (plain
        # int64 keys on the wire); the coordinator decodes the merged
        # output's keys back to the strings as a last presentation pass.
        if key_dictionary is not None:
            finalize = _DecodeKeyFinalize(key_dictionary.values,
                                          inner=finalize)
        self.finalize = finalize

    #: Per-shard state is exactly (key-partitioned sorter rows, keyed
    #: kernel partials): always rescalable.  The kernel key *is* the
    #: routing key even for ``"top-k"`` (shards run the grouped count;
    #: the coordinator finalizes).
    rescalable = True
    rescale_reason = None

    def build_executor(self, shard):
        return _GroupedAggregateExecutor(self, shard)

    def partition_states(self, states, new_workers, out_watermark):
        """Re-route retired shard state onto a pool of ``new_workers``."""
        return _partition_exported(
            states, new_workers, out_watermark,
            key_col=1, merge=self.spec.merge,
        )

    def reference_query(self):
        """The row-engine query this kernel must match byte-for-byte.

        With ``align="pre"`` the reference's windowing stage sits before
        the shard sort instead (see :meth:`reference_pre`): the query
        here is then just the grouped aggregate.  For ``"top-k"`` this
        is the per-shard stage only (grouped count); the coordinator's
        ``finalize`` supplies the rest.
        """
        from repro.engine.operators.aggregates import Avg, Count, Max, Min, Sum

        window, agg, column = self.window, self.agg, self.value_column
        if self.spec.needs_value:
            cls = {"sum": Sum, "avg": Avg, "min": Min, "max": Max}[agg]
            aggregate = lambda s: s.group_aggregate(  # noqa: E731
                cls(field(column))
            )
        else:
            aggregate = lambda s: s.group_aggregate(Count())  # noqa: E731
        if self.align == "pre":
            return aggregate
        return lambda s: aggregate(s.tumbling_window(window))

    def reference_pre(self):
        """The pre-sort stage of the row-engine reference (``align="pre"``
        only): apply it to the disordered stream before sorting."""
        if self.align != "pre":
            return None
        window = self.window
        return lambda d: d.tumbling_window(window)

    def describe(self):
        return {
            "plan": "grouped-aggregate",
            "agg": self.agg,
            "window": self.window,
            "late_policy": self.late_policy.name,
            "align": self.align,
        }


class _GroupedAggregateExecutor:
    """State machine replicating Sort → TumblingWindow → GroupedWindow-
    Aggregate on columns: a columnar sorter dealing released batches
    into the shared :class:`GroupedWindowKernel`, which folds lexsorted
    (start, key) runs via the plan's aggregate spec instead of
    per-event folds."""

    _NEG_INF = float("-inf")

    def __init__(self, plan, shard):
        self.plan = plan
        self._pre_aligned = plan.align == "pre"
        self._spec = plan.spec
        columns = 3 if self._spec.needs_value else 2
        self._sorter = ColumnarImpatienceSorter(
            late_policy=plan.late_policy, columns=columns
        )
        self._kernel = GroupedWindowKernel(plan.window, self._spec)
        # avg finalizes to floats, which cannot ride int64 column
        # batches — those rounds ship native float64 FDATA frames.
        self._float_output = plan.agg == "avg"
        self.events_in = 0

    def feed_batch(self, batch):
        batch = batch.compact()
        sync = batch.sync_times
        if self._pre_aligned:
            sync = sync - sync % self.plan.window
        cols = [sync, batch.keys]
        if self._spec.needs_value:
            cols.append(batch.payload_columns[self.plan.value_column])
        sync, cols = self._presorted(sync, cols)
        self._sorter.insert_batch(sync, tuple(cols))
        self.events_in += len(batch)

    def feed_elements(self, elements):
        sync = np.fromiter(
            (e.sync_time for e in elements), np.int64, len(elements)
        )
        if self._pre_aligned:
            sync -= sync % self.plan.window
        keys = np.fromiter(
            (e.key for e in elements), np.int64, len(elements)
        )
        cols = [sync, keys]
        if self._spec.needs_value:
            column = self.plan.value_column
            cols.append(np.fromiter(
                (e.payload[column] for e in elements), np.int64,
                len(elements),
            ))
        sync, cols = self._presorted(sync, cols)
        self._sorter.insert_batch(sync, tuple(cols))
        self.events_in += len(elements)

    def _presorted(self, sync, cols):
        """Stable-sort one ingress batch by sync time before dealing it.

        A sorted batch is a single ascending segment, so the sorter's
        placement runs one C-speed radix argsort plus at most one
        cascade step per live run, instead of a Python-level binary
        search per descent — the hot path of the parallel worker.
        Everything downstream is insensitive to the reordering: the
        aggregation is commutative, DROP/ADJUST lateness handling is a
        mask/count over the whole batch, and the stable sort keeps
        equal-sync rows in arrival order.  Only RAISE observes arrival
        order (it reports the *first* late event), so a RAISE batch
        containing a late value is dealt unsorted.
        """
        if sync.size < 2:
            return sync, cols
        if (
            self.plan.late_policy is LatePolicy.RAISE
            and self._sorter.watermark != self._NEG_INF
            and bool((sync <= self._sorter.watermark).any())
        ):
            return sync, cols
        order = np.argsort(sync, kind="stable")
        sync = sync[order]
        permuted = [sync]
        permuted.extend(col[order] for col in cols[1:])
        return sync, permuted

    def _accumulate(self, released):
        _, cols = released
        sync = cols[0]
        if sync.size == 0:
            return
        starts = sync - sync % self.plan.window
        values = cols[2] if self._spec.needs_value else None
        self._kernel.accumulate(starts, cols[1], values)

    def _emit(self, rows):
        """Package closed ``(start, key, result)`` rows: one columnar
        batch for int aggregates, a float64 column batch for avg."""
        if not rows:
            return []
        window = self.plan.window
        starts = np.fromiter((r[0] for r in rows), np.int64, len(rows))
        keys = np.fromiter((r[1] for r in rows), np.int64, len(rows))
        if self._float_output:
            values = np.fromiter(
                (r[2] for r in rows), np.float64, len(rows)
            )
            return [("fbatch", (starts, starts + window, keys, values))]
        out = EventBatch(
            starts,
            starts + window,
            keys,
            [np.fromiter((r[2] for r in rows), np.int64, len(rows))],
        )
        return [("batch", out)]

    def feed_punctuation(self, timestamp):
        window = self.plan.window
        if self._pre_aligned:
            # The pushed-down TumblingWindow aligns the promise *before*
            # the sorter sees it (idempotent for the re-alignment below).
            timestamp = (timestamp + 1) - (timestamp + 1) % window - 1
        self._accumulate(self._sorter.on_punctuation(timestamp))
        # TumblingWindow aligns the promise to the output time domain.
        next_raw = timestamp + 1
        aligned_bound = next_raw - next_raw % window - 1
        items = self._emit(self._kernel.close(aligned_bound))
        bound = self._kernel.forward(aligned_bound)
        if bound is not None:
            items.append(("punct", bound))
        return items

    def feed_flush(self):
        self._accumulate(self._sorter.flush())
        return self._emit(self._kernel.close(None))

    def buffered(self) -> int:
        return int(self._sorter.buffered)

    def export_state(self):
        """Ship this shard's durable state for a rescale handoff."""
        from repro.engine.checkpoint import checkpoint_sorter

        return {
            "sorter": checkpoint_sorter(self._sorter),
            "windows": self._kernel.windows,
            "events_in": self.events_in,
        }

    def restore_state(self, state) -> None:
        """Adopt a re-partitioned slice of a retired pool's state."""
        from repro.engine.checkpoint import restore_sorter

        self._sorter = restore_sorter(state["sorter"])
        self._kernel.windows = state["windows"]
        if state["out_watermark"] is not None:
            self._kernel.out_watermark = state["out_watermark"]
        self.events_in = state.get("events_in", 0)

    def stats(self):
        late = self._sorter.late
        history = self._sorter.stats.run_count_history
        return {
            "plan": "grouped-aggregate",
            "engine": "vectorized",
            "events_in": self.events_in,
            "buffered_peak": self._sorter.stats.max_buffered,
            "runs_peak": max((runs for _, runs in history), default=0),
            "late_dropped": late.dropped,
            "late_adjusted": late.adjusted,
        }


def _partition_exported(states, new_workers, out_watermark, key_col,
                        merge):
    """Split retired shards' exported state across a new pool.

    ``states`` are ``export_state()`` docs (format-4 sorter checkpoint
    + kernel window partials); rows and partials are re-routed with the
    exact routing hash (``stable_key_hash`` of the key column modulo
    ``new_workers``), so every key lands on the shard that will receive
    its future events.  ``key_col=None`` is the ungrouped case: there is
    no key column to split on, so all rows and all partials (merged via
    the aggregate spec's ``merge``) land on shard 0 — sound only under a
    coordinator ``finalize``, which :attr:`CompiledShardPlan.rescalable`
    enforces.  Returns one ``restore_state()`` doc per new shard.
    """
    from repro.engine.sharded import (
        stable_key_hash,
        stable_key_hash_array,
    )

    base = states[0]["sorter"]
    n_cols = base["columns"]
    late_policy = base["late_policy"]
    split_keys = key_col is not None and new_workers > 1
    ts_parts = [[] for _ in range(new_workers)]
    col_parts = [
        [[] for _ in range(n_cols)] for _ in range(new_workers)
    ]
    windows = [{} for _ in range(new_workers)]
    watermark = None
    for state in states:
        doc = state["sorter"]
        if doc["watermark"] is not None:
            watermark = (
                doc["watermark"] if watermark is None
                else max(watermark, doc["watermark"])
            )
        ts = np.asarray(doc["ts"], dtype=np.int64)
        if ts.size:
            if split_keys:
                shards = stable_key_hash_array(
                    doc["cols"][key_col]
                ) % np.uint64(new_workers)
            else:
                shards = np.zeros(ts.size, dtype=np.uint64)
            for w in range(new_workers):
                mask = shards == w
                if not mask.any():
                    continue
                ts_parts[w].append(ts[mask])
                for c in range(n_cols):
                    col_parts[w][c].append(doc["cols"][c][mask])
        for start, groups in state["windows"].items():
            for key, partial in groups.items():
                w = (
                    stable_key_hash(key) % new_workers
                    if split_keys else 0
                )
                target = windows[w].setdefault(start, {})
                if key in target:
                    # Only the ungrouped all-to-one route can collide:
                    # key-split partials were disjoint by construction.
                    target[key] = merge(target[key], partial)
                else:
                    target[key] = partial
    out = []
    for w in range(new_workers):
        if ts_parts[w]:
            ts = np.concatenate(ts_parts[w])
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            cols = [
                np.concatenate(col_parts[w][c])[order]
                for c in range(n_cols)
            ]
        else:
            ts = np.empty(0, dtype=np.int64)
            cols = [
                np.empty(0, dtype=np.int64) for _ in range(n_cols)
            ]
        out.append({
            "sorter": {
                "format": 4,
                "columns": n_cols,
                "string_columns": 0,
                "ts": ts,
                "cols": cols,
                "scols": [],
                "watermark": watermark,
                "late_policy": late_policy,
                "shard": {"index": w, "count": new_workers},
            },
            "windows": windows[w],
            "out_watermark": out_watermark,
        })
    return out


def _wire_mode(compiled):
    """How a compiled terminal's output rows ride the exchange.

    ``"int"`` — one int64 value column (DATA frames, scalar payloads);
    ``"float"`` — native float64 value column (FDATA frames, the avg
    path); ``"tuple"`` — int64 column batch, one column per payload
    field (DATA frames, tuple payloads); ``"pickle"`` — row-shaped
    element lists (nested payloads the column formats cannot carry).
    """
    from repro.engine.kernels import (
        CoalesceKernel,
        DistinctKernel,
        GroupApplyKernel,
        PatternKernel,
        RawTopKKernel,
        SelfJoinKernel,
        SessionKernel,
    )

    if not compiled.pass_through:
        return "float" if compiled.spec.name == "avg" else "int"
    kernel = compiled.kernel_factory()
    if isinstance(kernel, SelfJoinKernel):
        return "pickle"        # nested (left, right) payload tuples
    if isinstance(kernel, (DistinctKernel, PatternKernel, RawTopKKernel)):
        return "tuple"
    if isinstance(kernel, SessionKernel):
        return "float" if kernel.fold == "avg" else "int"
    if isinstance(kernel, CoalesceKernel):
        return "int"
    if isinstance(kernel, GroupApplyKernel):
        if kernel.spec is None:
            return "tuple"
        return "float" if kernel.spec.name == "avg" else "int"
    return "pickle"            # unknown kernel: rows are always correct


class CompiledShardPlan:
    """Run a compiled fused kernel pipeline inside each shard worker.

    ``plan`` is any :class:`~repro.engine.planner.QueryPlan` the fused
    compiler lowers (:func:`~repro.engine.compiler.compile_plan` runs at
    construction time and raises
    :class:`~repro.engine.compiler.UnsupportedPlanError` for shapes it
    cannot — callers fall back to :class:`RowPlan` with that reason).
    Each worker drives its own ``_Execution`` — columnar sort plus the
    plan's terminal kernel — over the routed columns, so the per-shard
    pipeline is byte-identical to the same plan on a :class:`RowPlan`
    shard, and therefore so is the merged stream.

    ``finalize`` is the coordinator-side tail for non-key-local stages
    (e.g. summing per-shard window counts, top-k of shard top-ks),
    identical to :class:`RowPlan`'s hook.  ``memory_budget`` bounds each
    shard sorter's resident bytes via the spill-to-disk external sorter.

    The coordinator's deterministic RAISE guard engages when the shard
    pipeline applies no sync transform before the sorter (``window=1``,
    ``align="post"``) or exactly one window stage (``window=hop``,
    ``align="pre"``); a plan with filter stages disables the guard
    (``window=None``) because a guard would fire on events the shard
    pipeline filters out before its sorter — those plans surface worker
    ``LateEventError`` frames instead.
    """

    def __init__(self, plan, finalize=None, memory_budget=None):
        from repro.engine.compiler import _WindowStage, compile_plan

        self.query_plan = plan
        self.compiled = compile_plan(plan)
        self.finalize = finalize
        self.memory_budget = memory_budget
        self.late_policy = self.compiled.late_policy
        stages = self.compiled.stages
        if not stages:
            self.window = 1
            self.align = "post"
        elif len(stages) == 1 and isinstance(stages[0], _WindowStage):
            self.window = stages[0].hop
            self.align = "pre"
        else:
            self.window = None     # disables the coordinator RAISE guard
            self.align = "post"
        self.wire_mode = _wire_mode(self.compiled)
        # The coordinator decodes this plan's DATA frames as scalar
        # payloads (single int64 value column) in "int" mode.
        self.scalar_output = self.wire_mode == "int"
        compiled = self.compiled
        if compiled.pass_through:
            self.rescalable = False
            self.rescale_reason = (
                "pass-through terminal kernels hold order-sensitive "
                "per-shard state"
            )
        elif compiled.top_k is not None:
            self.rescalable = False
            self.rescale_reason = (
                "per-shard top-k state is lossily trimmed and cannot be "
                "re-partitioned"
            )
        elif not compiled.grouped and finalize is None:
            self.rescalable = False
            self.rescale_reason = (
                "ungrouped aggregate shards are only pool-invariant "
                "after a coordinator finalize"
            )
        else:
            self.rescalable = True
            self.rescale_reason = None

    def build_executor(self, shard):
        return _CompiledShardExecutor(self, shard)

    def partition_states(self, states, new_workers, out_watermark):
        """Re-route retired shard state onto a pool of ``new_workers``."""
        return _partition_exported(
            states, new_workers, out_watermark,
            key_col=1 if self.compiled.grouped else None,
            merge=self.compiled.spec.merge,
        )

    def describe(self):
        return {
            "plan": "compiled",
            "kernels": self.compiled.describe(),
            "late_policy": self.late_policy.name,
            "wire": self.wire_mode,
        }


class _CompiledShardExecutor:
    """Drive one shard's fused ``_Execution`` with the push protocol.

    The execution object accumulates output ``events`` /
    ``punctuations`` lists; each round drains both (events first, then
    the round's punctuation — the order the wire protocol requires,
    which every terminal kernel already guarantees within a round) and
    packages them per the plan's wire mode.
    """

    def __init__(self, plan, shard):
        from repro.engine.compiler import _Execution

        self.plan = plan
        self._execution = _Execution(
            plan.compiled, memory_budget=plan.memory_budget
        )
        self._mode = plan.wire_mode
        self.events_in = 0

    def feed_batch(self, batch):
        batch = batch.compact()
        n = len(batch)
        if n:
            self._execution.process_chunk(
                batch.sync_times, batch.other_times, batch.keys,
                list(batch.payload_columns),
            )
        self.events_in += n

    def feed_elements(self, elements):
        n = len(elements)
        if not n:
            return
        sync = np.fromiter((e.sync_time for e in elements), np.int64, n)
        other = np.fromiter((e.other_time for e in elements), np.int64, n)
        keys = np.fromiter((e.key for e in elements), np.int64, n)
        arity = len(elements[0].payload)
        if arity:
            matrix = np.asarray(
                [e.payload for e in elements], dtype=np.int64
            )
            cols = [matrix[:, c] for c in range(arity)]
        else:
            cols = []
        self._execution.process_chunk(sync, other, keys, cols)
        self.events_in += n

    def feed_punctuation(self, timestamp):
        self._execution.punctuate(timestamp)
        return self._round_items()

    def feed_flush(self):
        self._execution.flush()
        items = self._round_items()
        self._execution.close()
        return items

    def buffered(self) -> int:
        sorter = self._execution.sorter
        return int(sorter.buffered) if sorter is not None else 0

    def export_state(self):
        """Ship this shard's durable state for a rescale handoff.

        Only reachable for rescalable plans (non-pass-through, no
        top-k), where the execution always owns a sorter and a grouped
        kernel.
        """
        from repro.engine.checkpoint import checkpoint_sorter

        return {
            "sorter": checkpoint_sorter(self._execution.sorter),
            "windows": self._execution.aggregate.windows,
            "events_in": self.events_in,
        }

    def restore_state(self, state) -> None:
        """Adopt a re-partitioned slice of a retired pool's state."""
        from repro.engine.checkpoint import restore_sorter

        execution = self._execution
        execution.sorter = restore_sorter(
            state["sorter"], self.plan.memory_budget
        )
        execution.aggregate.windows = state["windows"]
        if state["out_watermark"] is not None:
            execution.aggregate.out_watermark = state["out_watermark"]
        self.events_in = state.get("events_in", 0)

    def _round_items(self):
        execution = self._execution
        events, execution.events = execution.events, []
        puncts, execution.punctuations = execution.punctuations, []
        items = self._package(events)
        items.extend(("punct", int(ts)) for ts in puncts)
        return items

    def _package(self, events):
        if not events:
            return []
        mode = self._mode
        if mode == "pickle":
            return [("elements", events)]
        n = len(events)
        sync = np.fromiter((e.sync_time for e in events), np.int64, n)
        other = np.fromiter((e.other_time for e in events), np.int64, n)
        keys = np.fromiter((e.key for e in events), np.int64, n)
        if mode == "float":
            values = np.fromiter(
                (e.payload for e in events), np.float64, n
            )
            return [("fbatch", (sync, other, keys, values))]
        if mode == "int":
            cols = [np.fromiter((e.payload for e in events), np.int64, n)]
        else:                  # "tuple": one int64 column per field
            arity = len(events[0].payload)
            cols = [
                np.fromiter((e.payload[c] for e in events), np.int64, n)
                for c in range(arity)
            ]
        return [("batch", EventBatch(sync, other, keys, cols))]

    def stats(self):
        sorter = self._execution.sorter
        late = getattr(sorter, "late", None)
        sorter_stats = getattr(sorter, "stats", None)
        return {
            "plan": "compiled",
            "engine": "columnar",
            "kernels": self.plan.compiled.describe(),
            "events_in": self.events_in,
            "buffered_peak": getattr(sorter_stats, "max_buffered", 0),
            "late_dropped": getattr(late, "dropped", 0),
            "late_adjusted": getattr(late, "adjusted", 0),
        }
