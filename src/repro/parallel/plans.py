"""Per-shard execution plans for the parallel runtime.

A *plan* describes what one shard worker does with its routed substream.
Every plan builds an executor obeying one push protocol —
``feed_batch`` / ``feed_elements`` (buffer disordered ingress),
``feed_punctuation`` (advance the shard pipeline, return the round's
output items), ``feed_flush`` (end of stream) — which is exactly the
``sort → query`` stage a shard runs in
:func:`repro.engine.sharded.shard_disordered`; equivalence between the
two is the runtime's core invariant.

Two plan families:

:class:`RowPlan`
    Generic: materializes the routed columns back into
    :class:`~repro.engine.event.Event` rows and drives the *actual*
    engine operators (``Sort`` + whatever ``query_fn`` composes).  Works
    for any key-local query — sessions, coalesce, patterns — because the
    fork start method ships the closure to the worker as-is.

:class:`GroupedAggregatePlan`
    Vectorized: a :class:`~repro.core.columnar.ColumnarImpatienceSorter`
    (timestamps + payload columns, no Event objects) feeding a
    numpy grouped count/sum kernel that replicates
    ``Sort → TumblingWindow(w) → GroupedWindowAggregate(agg)``
    byte-for-byte — including the window-close rule (``end - 1 <= T``),
    the clamped forwarded punctuation
    (``min(T', min(open) - 1)``, suppressed unless it advances), and the
    ADJUST-policy subtlety that a late event keeps its *original* sync
    time and may re-open an already-emitted window.

Output items a round may produce (worker ships them as frames in this
order): ``("batch", EventBatch)`` for columnar rows,
``("elements", [Event | Punctuation, ...])`` for row-shaped output, and
``("punct", ts)`` for an emitted punctuation.
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation, is_punctuation
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.operators.base import Operator
from repro.engine.operators.sort import Sort
from repro.engine.stream import Streamable

__all__ = ["RowPlan", "GroupedAggregatePlan"]


class _StreamTap(Operator):
    """Sink capturing a pipeline's emissions in order, round by round."""

    def __init__(self):
        super().__init__()
        self.items = []

    def on_event(self, event):
        self.items.append(event)

    def on_punctuation(self, punctuation):
        self.items.append(punctuation)

    def on_flush(self):
        pass

    def take(self):
        items, self.items = self.items, []
        return items


class RowPlan:
    """Run an arbitrary key-local ``query_fn`` on each shard's rows.

    ``sorter`` is an optional zero-argument factory for the per-shard
    online sorter (default: an ``ImpatienceSorter`` keyed on
    ``sync_time``); ``finalize`` is an optional non-key-local query
    applied by the *coordinator* to the merged stream (e.g. a
    ``WindowTopK`` over per-group aggregates); ``pre`` is an optional
    order-insensitive query (``DisorderedStreamable ->
    DisorderedStreamable``, e.g. ``lambda d: d.tumbling_window(w)``)
    run *before* the per-shard sort — the paper's §IV push-down, which
    reduces disorder inside each worker and changes which events count
    as late exactly like it does in the single-process plan.
    """

    def __init__(self, query_fn, sorter=None, finalize=None, pre=None):
        self.query_fn = query_fn
        self.sorter = sorter
        self.finalize = finalize
        self.pre = pre

    def build_executor(self, shard):
        return _RowExecutor(self, shard)

    def describe(self):
        return {"plan": "row", "query": getattr(
            self.query_fn, "__name__", "query_fn"
        )}


class _RowExecutor:
    def __init__(self, plan, shard):
        src = source_node(f"shard-{shard}")
        upstream = src
        if plan.pre is not None:
            from repro.engine.disordered import DisorderedStreamable

            upstream = plan.pre(DisorderedStreamable(src, None)).node
        factory = (
            Sort if plan.sorter is None else (lambda: Sort(plan.sorter()))
        )
        sort_node = QueryNode(
            factory, ((upstream, None),), name=f"sort-{shard}"
        )
        out = plan.query_fn(Streamable(sort_node, None))
        tap_node = QueryNode(_StreamTap, ((out.node, None),), name="tap")
        self._pipeline = Pipeline([tap_node])
        self._source = self._pipeline.sources[0]
        self._tap = self._pipeline.operator_for(tap_node)
        self._sort = self._pipeline.operator_for(sort_node)
        self.events_in = 0

    def feed_batch(self, batch):
        for event in batch.events():
            self._source.on_event(event)
        self.events_in += batch.valid_count

    def feed_elements(self, elements):
        for element in elements:
            self._source.on_event(element)
            self.events_in += 1

    def feed_punctuation(self, timestamp):
        self._source.on_punctuation(Punctuation(timestamp))
        return self._round_items()

    def feed_flush(self):
        self._source.on_flush()
        return self._round_items()

    def _round_items(self):
        emitted = self._tap.take()
        items = []
        run = []
        for element in emitted:
            if is_punctuation(element):
                if run:
                    items.append(("elements", run))
                    run = []
                items.append(("punct", element.timestamp))
            else:
                run.append(element)
        if run:
            items.append(("elements", run))
        return items

    def stats(self):
        sorter = self._sort.sorter
        late = getattr(sorter, "late", None)
        return {
            "plan": "row",
            "events_in": self.events_in,
            "buffered_peak": getattr(
                getattr(sorter, "stats", None), "max_buffered", 0
            ),
            "late_dropped": getattr(late, "dropped", 0),
            "late_adjusted": getattr(late, "adjusted", 0),
        }


class GroupedAggregatePlan:
    """Vectorized ``tumbling_window(w) |> group_aggregate(Count()/Sum())``.

    ``agg`` is ``"count"`` or ``"sum"``; for sums, ``value_column`` picks
    the payload column folded (the row-engine equivalent is
    ``Sum(lambda p: p[column])``).  ``late_policy`` configures the
    per-shard columnar sorter exactly like the row path's
    ``ImpatienceSorter(late_policy=...)``.

    ``align`` places the window's timestamp transformation relative to
    the sort: ``"post"`` (default) replicates
    ``Sort → TumblingWindow → GroupedWindowAggregate``;  ``"pre"``
    replicates the §IV push-down
    ``TumblingWindow → Sort → GroupedWindowAggregate`` — timestamps are
    floored to window starts *before* the lateness check, so events the
    post-sort plan drops as late can still land in their (already
    current) window, exactly like
    ``DisorderedStreamable.tumbling_window(w).to_streamable()``.
    """

    def __init__(self, window, agg="count", value_column=0,
                 late_policy=LatePolicy.DROP, align="post"):
        if window < 1:
            raise ValueError("window size must be >= 1")
        if agg not in ("count", "sum"):
            raise ValueError(f"unsupported aggregate {agg!r}")
        if align not in ("post", "pre"):
            raise ValueError(f"align must be 'post' or 'pre', not {align!r}")
        self.window = window
        self.agg = agg
        self.value_column = value_column
        self.late_policy = late_policy
        self.align = align
        self.finalize = None

    def build_executor(self, shard):
        return _GroupedAggregateExecutor(self, shard)

    def reference_query(self):
        """The row-engine query this kernel must match byte-for-byte.

        With ``align="pre"`` the reference's windowing stage sits before
        the shard sort instead (see :meth:`reference_pre`): the query
        here is then just the grouped aggregate.
        """
        from repro.engine.operators.aggregates import Count, Sum

        window, agg, column = self.window, self.agg, self.value_column
        if agg == "count":
            aggregate = lambda s: s.group_aggregate(Count())  # noqa: E731
        else:
            aggregate = lambda s: s.group_aggregate(  # noqa: E731
                Sum(lambda p: p[column])
            )
        if self.align == "pre":
            return aggregate
        return lambda s: aggregate(s.tumbling_window(window))

    def reference_pre(self):
        """The pre-sort stage of the row-engine reference (``align="pre"``
        only): apply it to the disordered stream before sorting."""
        if self.align != "pre":
            return None
        window = self.window
        return lambda d: d.tumbling_window(window)

    def describe(self):
        return {
            "plan": "grouped-aggregate",
            "agg": self.agg,
            "window": self.window,
            "late_policy": self.late_policy.name,
            "align": self.align,
        }


class _GroupedAggregateExecutor:
    """State machine replicating Sort → TumblingWindow → GroupedWindow-
    Aggregate on columns.  ``_windows`` maps window start ->
    ``{key: value}`` like the operator's per-window group dicts, but is
    fed by reduceat over lexsorted (start, key) runs instead of
    per-event folds."""

    _NEG_INF = float("-inf")

    def __init__(self, plan, shard):
        self.plan = plan
        self._pre_aligned = plan.align == "pre"
        columns = 2 if plan.agg == "count" else 3
        self._sorter = ColumnarImpatienceSorter(
            late_policy=plan.late_policy, columns=columns
        )
        self._windows = {}
        self._out_watermark = self._NEG_INF
        self.events_in = 0

    def feed_batch(self, batch):
        batch = batch.compact()
        sync = batch.sync_times
        if self._pre_aligned:
            sync = sync - sync % self.plan.window
        cols = [sync, batch.keys]
        if self.plan.agg == "sum":
            cols.append(batch.payload_columns[self.plan.value_column])
        sync, cols = self._presorted(sync, cols)
        self._sorter.insert_batch(sync, tuple(cols))
        self.events_in += len(batch)

    def feed_elements(self, elements):
        sync = np.fromiter(
            (e.sync_time for e in elements), np.int64, len(elements)
        )
        if self._pre_aligned:
            sync -= sync % self.plan.window
        keys = np.fromiter(
            (e.key for e in elements), np.int64, len(elements)
        )
        cols = [sync, keys]
        if self.plan.agg == "sum":
            column = self.plan.value_column
            cols.append(np.fromiter(
                (e.payload[column] for e in elements), np.int64,
                len(elements),
            ))
        sync, cols = self._presorted(sync, cols)
        self._sorter.insert_batch(sync, tuple(cols))
        self.events_in += len(elements)

    def _presorted(self, sync, cols):
        """Stable-sort one ingress batch by sync time before dealing it.

        A sorted batch is a single ascending segment, so the sorter's
        placement runs one C-speed radix argsort plus at most one
        cascade step per live run, instead of a Python-level binary
        search per descent — the hot path of the parallel worker.
        Everything downstream is insensitive to the reordering: the
        aggregation is commutative, DROP/ADJUST lateness handling is a
        mask/count over the whole batch, and the stable sort keeps
        equal-sync rows in arrival order.  Only RAISE observes arrival
        order (it reports the *first* late event), so a RAISE batch
        containing a late value is dealt unsorted.
        """
        if sync.size < 2:
            return sync, cols
        if (
            self.plan.late_policy is LatePolicy.RAISE
            and self._sorter.watermark != self._NEG_INF
            and bool((sync <= self._sorter.watermark).any())
        ):
            return sync, cols
        order = np.argsort(sync, kind="stable")
        sync = sync[order]
        permuted = [sync]
        permuted.extend(col[order] for col in cols[1:])
        return sync, permuted

    def _accumulate(self, released):
        _, cols = released
        sync = cols[0]
        if sync.size == 0:
            return
        window = self.plan.window
        starts = sync - sync % window
        keys = cols[1]
        if self.plan.agg == "count":
            values = None
        else:
            values = cols[2]
        order = np.lexsort((keys, starts))
        starts = starts[order]
        keys = keys[order]
        boundaries = np.flatnonzero(
            (np.diff(starts) != 0) | (np.diff(keys) != 0)
        ) + 1
        group_idx = np.concatenate(([0], boundaries))
        if values is None:
            counts = np.diff(np.append(group_idx, starts.size))
            folded = counts
        else:
            values = values[order]
            folded = np.add.reduceat(values, group_idx)
        for start, key, value in zip(
            starts[group_idx].tolist(), keys[group_idx].tolist(),
            folded.tolist(),
        ):
            groups = self._windows.get(start)
            if groups is None:
                groups = self._windows[start] = {}
            groups[key] = groups.get(key, 0) + value

    def _close(self, up_to):
        """Emit windows with ``end - 1 <= up_to`` (all when ``None``),
        ascending by start, groups in key order — one output batch."""
        window = self.plan.window
        due = sorted(
            start for start in self._windows
            if up_to is None or start + window - 1 <= up_to
        )
        if not due:
            return []
        starts, keys, values = [], [], []
        for start in due:
            groups = self._windows.pop(start)
            for key in sorted(groups):
                starts.append(start)
                keys.append(key)
                values.append(groups[key])
        out = EventBatch(
            np.array(starts, dtype=np.int64),
            np.array(starts, dtype=np.int64) + window,
            np.array(keys, dtype=np.int64),
            [np.array(values, dtype=np.int64)],
        )
        return [("batch", out)]

    def feed_punctuation(self, timestamp):
        window = self.plan.window
        if self._pre_aligned:
            # The pushed-down TumblingWindow aligns the promise *before*
            # the sorter sees it (idempotent for the re-alignment below).
            timestamp = (timestamp + 1) - (timestamp + 1) % window - 1
        self._accumulate(self._sorter.on_punctuation(timestamp))
        # TumblingWindow aligns the promise to the output time domain.
        next_raw = timestamp + 1
        aligned_bound = next_raw - next_raw % window - 1
        items = self._close(aligned_bound)
        bound = aligned_bound
        if self._windows:
            bound = min(bound, min(self._windows) - 1)
        if bound > self._out_watermark:
            self._out_watermark = bound
            items.append(("punct", bound))
        return items

    def feed_flush(self):
        self._accumulate(self._sorter.flush())
        return self._close(None)

    def stats(self):
        late = self._sorter.late
        history = self._sorter.stats.run_count_history
        return {
            "plan": "grouped-aggregate",
            "events_in": self.events_in,
            "buffered_peak": self._sorter.stats.max_buffered,
            "runs_peak": max((runs for _, runs in history), default=0),
            "late_dropped": late.dropped,
            "late_adjusted": late.adjusted,
        }
