"""Multi-process shard runtime with shared-memory columnar exchange.

Trill's Map/Reduce scale-out (§I-A/§V), made real: the single-process
sharded plan in :mod:`repro.engine.sharded` becomes a coordinator that
hash-routes disordered ingress to ``N`` forked shard workers over
shared-memory ring buffers, each worker runs the per-shard
``sort → query`` pipeline (row operators or a vectorized columnar
kernel), and the coordinator k-way merges the shard outputs back into
one ordered stream that is byte-identical to the single-process result.

Public surface:

- :func:`run_parallel` / :class:`ParallelResult` — the runtime.
- :class:`RowPlan` / :class:`GroupedAggregatePlan` /
  :class:`CompiledShardPlan` — per-shard plans; the last lowers any
  compilable :class:`~repro.engine.planner.QueryPlan` onto the fused
  columnar kernels and runs them inside every worker.
- :class:`AutoscalePolicy` / :func:`parse_parallel_spec` — adaptive
  pool sizing between punctuation rounds (``--parallel auto``),
  byte-identical to any fixed pool.
- :func:`crash_once` / :func:`crash_on_rescale` — one-shot fault
  injection for crash tests.
- :class:`ShmRing` — the SPSC shared-memory ring (exchange transport).

See ``docs/parallelism.md`` for the architecture walk-through.
"""

from __future__ import annotations

from multiprocessing import get_context

from repro.parallel.autoscale import (
    AutoscalePolicy,
    ScaleDecision,
    parse_parallel_spec,
)
from repro.parallel.plans import (
    CompiledShardPlan,
    GroupedAggregatePlan,
    RowPlan,
)
from repro.parallel.runtime import ParallelResult, run_parallel
from repro.parallel.shm import ShmRing

__all__ = [
    "run_parallel",
    "ParallelResult",
    "RowPlan",
    "GroupedAggregatePlan",
    "CompiledShardPlan",
    "AutoscalePolicy",
    "ScaleDecision",
    "parse_parallel_spec",
    "ShmRing",
    "crash_once",
    "crash_on_rescale",
]


def crash_once(shard, after_rounds=1):
    """Build a ``fault`` spec for :func:`run_parallel`: the worker for
    ``shard`` dies abruptly after ``after_rounds`` punctuation rounds —
    once.  The armed flag lives in shared memory, so a supervised rerun
    (which forks fresh workers) does not crash again; tests use this to
    prove byte-identical recovery."""
    flag = get_context("fork").Value("i", 1)
    return (shard, after_rounds, flag)


def crash_on_rescale(shard):
    """Build a ``fault`` spec that kills the worker for ``shard`` the
    moment it receives an EXPORT frame — i.e. mid-rescale, after the
    barrier drained but before its state ships.  One-shot, like
    :func:`crash_once`: the supervised rerun replays cleanly and must
    still produce exactly-once output."""
    flag = get_context("fork").Value("i", 1)
    return (shard, -1, flag)
