"""Additional disorder measures from the adaptive-sorting survey.

The paper's four measures (§II) come from Estivill-Castro & Wood's survey
of adaptive sorting, which defines several more.  Three widely used ones
are provided here because they bound different sorter behaviours and are
useful when characterizing a new log source:

* **Rem** — minimum number of elements whose *removal* leaves a sorted
  sequence: ``n - LIS`` (longest non-decreasing subsequence).  Computed
  with Patience dealing, whose run tails give LIS in O(n log n) — a
  pleasant consequence of the same machinery Impatience sort runs on.
* **Exc** — minimum number of exchanges to sort: ``n`` minus the number
  of cycles in the sorted-position permutation.
* **Ham** — number of elements not already in their sorted position.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "longest_nondecreasing_subsequence",
    "rem",
    "exc",
    "ham",
]


def longest_nondecreasing_subsequence(values) -> int:
    """Length of the longest non-decreasing subsequence (Patience LIS).

    Classic Patience argument: deal each element onto the first pile
    whose top is *greater* than it (strictly); the number of piles equals
    the LIS length for the non-decreasing variant.
    """
    tops = []  # pile tops; non-decreasing sequence of "smallest tops"
    for value in values:
        # First pile whose top > value  <=>  bisect_right over tops.
        idx = bisect_right(tops, value)
        if idx == len(tops):
            tops.append(value)
        else:
            tops[idx] = value
    return len(tops)


def rem(values) -> int:
    """Minimum removals to leave the stream sorted: ``n - LIS``."""
    values = list(values)
    return len(values) - longest_nondecreasing_subsequence(values)


def _sorted_permutation(values):
    """Map each position to its position in the stably sorted order."""
    order = sorted(range(len(values)), key=lambda i: (values[i], i))
    permutation = [0] * len(values)
    for sorted_pos, original_pos in enumerate(order):
        permutation[original_pos] = sorted_pos
    return permutation


def exc(values) -> int:
    """Minimum exchanges (swaps) to sort: n minus permutation cycles."""
    values = list(values)
    permutation = _sorted_permutation(values)
    seen = [False] * len(values)
    cycles = 0
    for start in range(len(values)):
        if seen[start]:
            continue
        cycles += 1
        node = start
        while not seen[node]:
            seen[node] = True
            node = permutation[node]
    return len(values) - cycles


def ham(values) -> int:
    """Number of elements displaced from their stably-sorted position."""
    values = list(values)
    return sum(
        1 for i, p in enumerate(_sorted_permutation(values)) if i != p
    )
