"""The four disorder measures of Section II / Table I.

* **Inversions** — number of pairs ``i < j`` with ``a[i] > a[j]``;
  counted exactly in O(n log n) with a Fenwick tree over rank-compressed
  values (a merge-sort counter is provided as a cross-check for tests).
* **Distance** — the maximum ``j - i`` over all inversions: how far the
  most-delayed event must travel to reach its sorted position.
* **Runs** — the number of maximal non-decreasing (natural) runs.
* **Interleaved** — the minimum number of sorted runs whose interleaving
  can produce the stream.  By Dilworth's theorem this equals the length of
  the longest strictly decreasing subsequence, which is exactly the number
  of runs the greedy Patience partition creates — so the measure is
  computed with the same :class:`repro.core.runs.RunPool` machinery the
  sorter uses (and Proposition 3.1 holds with equality by construction).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.core.runs import RunPool

__all__ = [
    "DisorderStats",
    "count_inversions",
    "count_inversions_mergesort",
    "max_inversion_distance",
    "count_natural_runs",
    "count_interleaved_runs",
    "measure_disorder",
]


@dataclass(frozen=True)
class DisorderStats:
    """Table I row for one stream."""

    n: int
    inversions: int
    distance: int
    runs: int
    interleaved: int

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "inversions": self.inversions,
            "distance": self.distance,
            "runs": self.runs,
            "interleaved": self.interleaved,
        }

    @property
    def mean_run_length(self) -> float:
        """Average natural-run length (paper: CloudLog ≈ 2.7)."""
        return self.n / self.runs if self.runs else 0.0


def _ranks(values):
    """Rank-compress ``values`` to 1-based dense ranks (ties share a rank)."""
    distinct = sorted(set(values))
    return [bisect_left(distinct, v) + 1 for v in values], len(distinct)


def count_inversions(values) -> int:
    """Exact inversion count via a Fenwick (binary indexed) tree.

    For each element, counts previously seen elements strictly greater than
    it; ties do not count as inversions.
    """
    values = list(values)
    if len(values) < 2:
        return 0
    ranks, size = _ranks(values)
    tree = [0] * (size + 1)
    inversions = 0
    seen = 0
    for rank in ranks:
        # Number of prior elements with rank <= current rank.
        idx = rank
        less_equal = 0
        while idx > 0:
            less_equal += tree[idx]
            idx -= idx & -idx
        inversions += seen - less_equal
        seen += 1
        idx = rank
        while idx <= size:
            tree[idx] += 1
            idx += idx & -idx
    return inversions


def count_inversions_mergesort(values) -> int:
    """Inversion count by merge counting — the test cross-check."""
    values = list(values)

    def _count(arr):
        n = len(arr)
        if n < 2:
            return arr, 0
        mid = n // 2
        left, inv_l = _count(arr[:mid])
        right, inv_r = _count(arr[mid:])
        merged = []
        inv = inv_l + inv_r
        i = j = 0
        while i < len(left) and j < len(right):
            if right[j] < left[i]:
                inv += len(left) - i
                merged.append(right[j])
                j += 1
            else:
                merged.append(left[i])
                i += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inv

    return _count(values)[1]


def max_inversion_distance(values) -> int:
    """Maximum ``j - i`` over inversions ``(i, j)``; 0 when sorted.

    Uses the prefix-maximum trick: the earliest index whose *prefix max*
    exceeds ``a[j]`` is also the earliest inverting partner of ``j``
    (prefix maxima are non-decreasing, so binary search applies).
    """
    values = list(values)
    n = len(values)
    if n < 2:
        return 0
    prefix_max = []
    current = None
    for v in values:
        current = v if current is None or v > current else current
        prefix_max.append(current)
    best = 0
    for j in range(1, n):
        # First i with prefix_max[i] > values[j].
        i = bisect_right(prefix_max, values[j], 0, j)
        if i < j and j - i > best:
            best = j - i
    return best


def count_natural_runs(values) -> int:
    """Number of maximal non-decreasing runs (1 for sorted input)."""
    values = list(values)
    if not values:
        return 0
    runs = 1
    for prev, cur in zip(values, values[1:]):
        if cur < prev:
            runs += 1
    return runs


def count_interleaved_runs(values) -> int:
    """Minimum number of sorted runs whose interleaving yields the stream.

    Greedy Patience partition (first run with tail <= value) is optimal for
    this measure, so the answer is that partition's run count.
    """
    pool = RunPool(speculative=False)
    for v in values:
        pool.insert(v, None)
    return len(pool)


def measure_disorder(values) -> DisorderStats:
    """Compute the full Table I row for a stream of timestamps."""
    values = list(values)
    return DisorderStats(
        n=len(values),
        inversions=count_inversions(values),
        distance=max_inversion_distance(values),
        runs=count_natural_runs(values),
        interleaved=count_interleaved_runs(values),
    )
