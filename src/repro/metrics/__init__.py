"""Disorder measurement (Section II of the paper)."""

from repro.metrics.adaptive import (
    exc,
    ham,
    longest_nondecreasing_subsequence,
    rem,
)

from repro.metrics.profile import (
    disorder_profile,
    lateness_quantiles,
    lateness_values,
    suggest_reorder_latency,
)
from repro.metrics.disorder import (
    DisorderStats,
    count_interleaved_runs,
    count_inversions,
    count_inversions_mergesort,
    count_natural_runs,
    max_inversion_distance,
    measure_disorder,
)

__all__ = [
    "DisorderStats",
    "count_interleaved_runs",
    "disorder_profile",
    "lateness_quantiles",
    "lateness_values",
    "suggest_reorder_latency",
    "count_inversions",
    "exc",
    "ham",
    "longest_nondecreasing_subsequence",
    "rem",
    "count_inversions_mergesort",
    "count_natural_runs",
    "max_inversion_distance",
    "measure_disorder",
]
