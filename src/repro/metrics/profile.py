"""Stream disorder profiling: lateness distributions and regional stats.

Section II reads the datasets through global disorder measures and a
visual (Figure 2) inspection of regions; this module provides the
programmatic equivalents an operator of this system needs:

* :func:`lateness_values` / :func:`lateness_quantiles` — how far behind
  the running high watermark each event arrives; the distribution that a
  reorder-latency choice trades off against completeness.
* :func:`suggest_reorder_latency` — the smallest latency that captures a
  target fraction of events (how the paper "tuned the reorder latency
  for each dataset independently, to ensure that the sorting operator
  can tolerate a majority of late events", §VI-B2).
* :func:`disorder_profile` — per-region disorder measures over fixed
  arrival windows, quantifying Figure 2's "well-ordered coarsely /
  chaotic finely" reading region by region.
"""

from __future__ import annotations

import math

from repro.metrics.disorder import measure_disorder

__all__ = [
    "lateness_values",
    "lateness_quantiles",
    "suggest_reorder_latency",
    "disorder_profile",
]


def lateness_values(timestamps):
    """Per-event lateness: running high watermark minus event time.

    On-time events (new maxima) have lateness 0.
    """
    out = []
    high = None
    for t in timestamps:
        if high is None or t > high:
            high = t
            out.append(0)
        else:
            out.append(high - t)
    return out


def lateness_quantiles(timestamps, quantiles=(0.5, 0.9, 0.99, 1.0)):
    """Selected quantiles of the lateness distribution, as a dict."""
    values = sorted(lateness_values(timestamps))
    if not values:
        return {q: 0 for q in quantiles}
    n = len(values)
    return {
        q: values[min(max(math.ceil(q * n) - 1, 0), n - 1)]
        for q in quantiles
    }


def suggest_reorder_latency(timestamps, coverage=0.95):
    """Smallest reorder latency capturing ``coverage`` of events.

    An event is captured when its lateness is strictly below the latency
    plus one tick, i.e. latency >= lateness; the suggestion is the
    coverage-quantile of lateness (so ``coverage=1.0`` tolerates every
    event in the sample).
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be within (0, 1]")
    return lateness_quantiles(timestamps, (coverage,))[coverage]


def disorder_profile(timestamps, region_size=10_000):
    """Table I measures per fixed-size arrival region.

    Returns a list of dicts (one per region) with the region's offset and
    its :class:`~repro.metrics.disorder.DisorderStats` fields — the
    quantitative version of zooming into Figure 2's Region 1/Region 2.
    """
    if region_size < 2:
        raise ValueError("region_size must be >= 2")
    timestamps = list(timestamps)
    regions = []
    for offset in range(0, len(timestamps), region_size):
        chunk = timestamps[offset:offset + region_size]
        stats = measure_disorder(chunk)
        row = {"offset": offset, **stats.as_dict()}
        row["mean_run_length"] = stats.mean_run_length
        regions.append(row)
    return regions
