"""Merge strategies for sets of sorted runs.

The merge phase of (Im)Patience sort combines k sorted runs into one.  The
paper discusses three schedules:

* **Huffman merge** (Section III-E1): repeatedly merge the two *smallest*
  runs.  Because run sizes on nearly-sorted data are highly skewed, this
  minimizes the total number of element moves — it is exactly the Huffman
  coding construction with run length as symbol weight.
* **Pairwise merge in creation order** — the non-optimized baseline used for
  the "Impt w/o HM" ablation rows in Figure 7.
* **k-way heap merge** — the schedule classic Patience sort used; prior work
  (Chandramouli & Goldstein, SIGMOD 2014) found binary merges faster on
  modern hardware, so it is provided for comparison only.

A fourth strategy, ``"ovc"``, targets *string* sort keys: runs annotated
with offset-value codes (see :mod:`repro.core.strings`) merge by comparing
one integer per element instead of re-walking shared key prefixes, with
whole winning streaks moved by ``list.extend``.  On non-string keys it
falls back to the Huffman schedule, so it is safe to select universally.

All functions take runs as ``(keys, items)`` pairs of parallel ascending
lists and return one merged ``(keys, items)`` pair; ``"ovc"`` additionally
accepts pre-annotated ``(keys, items, codes)`` triples from an
OVC-annotated :class:`~repro.core.runs.RunPool`.  Merges are stable with
respect to run order for equal keys wherever the schedule allows.
"""

from __future__ import annotations

import heapq

from repro.core.strings import ovc_merge_runs

__all__ = [
    "merge_two",
    "huffman_merge",
    "pairwise_merge",
    "kway_heap_merge",
    "ovc_merge",
    "merge_runs",
    "MERGE_STRATEGIES",
]


def merge_two(left, right, stats=None):
    """Standard two-way merge of ``(keys, items)`` runs; ties favor left.

    Runs in *keyless* form — where the items list is the keys list itself
    (``items is keys``), the representation every sorter uses when sorting
    bare timestamps — are merged in a single pass over one array, and the
    result is returned in the same shared form.
    """
    lkeys, litems = left
    rkeys, ritems = right
    if not lkeys:
        return right
    if not rkeys:
        return left
    i = j = 0
    nl, nr = len(lkeys), len(rkeys)
    if litems is lkeys and ritems is rkeys:
        out = []
        append = out.append
        while i < nl and j < nr:
            if rkeys[j] < lkeys[i]:
                append(rkeys[j])
                j += 1
            else:
                append(lkeys[i])
                i += 1
        out.extend(lkeys[i:] if i < nl else rkeys[j:])
        if stats is not None:
            stats.merges += 1
            stats.merge_events += len(out)
        return out, out
    out_keys = []
    out_items = []
    while i < nl and j < nr:
        if rkeys[j] < lkeys[i]:
            out_keys.append(rkeys[j])
            out_items.append(ritems[j])
            j += 1
        else:
            out_keys.append(lkeys[i])
            out_items.append(litems[i])
            i += 1
    if i < nl:
        out_keys.extend(lkeys[i:])
        out_items.extend(litems[i:])
    else:
        out_keys.extend(rkeys[j:])
        out_items.extend(ritems[j:])
    if stats is not None:
        stats.merges += 1
        stats.merge_events += len(out_keys)
    return out_keys, out_items


def huffman_merge(runs, stats=None):
    """Merge runs smallest-two-first (optimal total element movement).

    A heap of ``(length, sequence_number, run)`` entries drives the Huffman
    schedule; the sequence number breaks length ties deterministically and
    keeps runs themselves out of the comparison.
    """
    runs = [run for run in runs if run[0]]
    if not runs:
        return [], []
    if len(runs) == 1:
        return runs[0]
    heap = [(len(keys), seq, (keys, items)) for seq, (keys, items) in enumerate(runs)]
    heapq.heapify(heap)
    seq = len(heap)
    while len(heap) > 1:
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        merged = merge_two(a, b, stats)
        heapq.heappush(heap, (len(merged[0]), seq, merged))
        seq += 1
    return heap[0][2]


def pairwise_merge(runs, stats=None):
    """Merge adjacent runs two-at-a-time in rounds (the no-HM baseline).

    Balanced binary merging in creation order — the schedule of the
    original Patience sort work the paper builds on (binary merges, but
    oblivious to the skewed run-size distribution that Huffman exploits).
    O(n log k) total movement versus Huffman's weight-optimal schedule.
    """
    runs = [run for run in runs if run[0]]
    if not runs:
        return [], []
    while len(runs) > 1:
        merged = [
            merge_two(runs[i], runs[i + 1], stats)
            for i in range(0, len(runs) - 1, 2)
        ]
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]


def kway_heap_merge(runs, stats=None):
    """Merge all runs at once through a k-entry min-heap.

    The classic Patience-sort merge; each output element costs a heap
    sift, which is why the paper's predecessor work abandoned it in favor
    of binary merges.
    """
    runs = [run for run in runs if run[0]]
    if not runs:
        return [], []
    if len(runs) == 1:
        return runs[0]
    heap = [(keys[0], seq, 0, keys, items) for seq, (keys, items) in enumerate(runs)]
    heapq.heapify(heap)
    out_keys = []
    out_items = []
    while heap:
        key, seq, idx, keys, items = heapq.heappop(heap)
        out_keys.append(key)
        out_items.append(items[idx])
        idx += 1
        if idx < len(keys):
            heapq.heappush(heap, (keys[idx], seq, idx, keys, items))
    if stats is not None:
        stats.merges += 1
        stats.merge_events += len(out_keys)
    return out_keys, out_items


def ovc_merge(runs, stats=None):
    """Offset-value coded merge for string keys (Huffman schedule).

    Accepts ``(keys, items)`` pairs and pre-annotated
    ``(keys, items, codes)`` triples.  The key type is sniffed from the
    first non-empty run: ``bytes``/``str`` keys take the OVC path; any
    other key type strips stale annotations and delegates to
    :func:`huffman_merge`, so ``merge="ovc"`` is a drop-in strategy for
    sorters whose key type is not known up front.
    """
    sample = next((run[0][0] for run in runs if run[0]), None)
    if isinstance(sample, (bytes, str)):
        return ovc_merge_runs(runs, stats)
    return huffman_merge([run[:2] for run in runs], stats)


MERGE_STRATEGIES = {
    "huffman": huffman_merge,
    "pairwise": pairwise_merge,
    "kway": kway_heap_merge,
    "ovc": ovc_merge,
}


def merge_runs(runs, strategy="huffman", stats=None):
    """Merge runs with a named strategy from :data:`MERGE_STRATEGIES`."""
    try:
        fn = MERGE_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown merge strategy {strategy!r}; "
            f"expected one of {sorted(MERGE_STRATEGIES)}"
        ) from None
    return fn(runs, stats)
