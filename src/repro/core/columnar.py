"""Columnar Impatience sort — the batched/vectorized extension.

Trill ingests columnar batches (§I-A); the natural evolution of
Impatience sort in that setting is to partition *run segments* instead of
single events: each incoming batch is split at its descents into maximal
ascending segments (a vectorized ``diff``), and each whole segment is
dealt onto the first sorted run whose tail does not exceed the segment's
head — the same placement rule, amortized over segments.  Runs are lists
of contiguous numpy chunks, so a punctuation cut pops whole chunks and
splits at most one per run via ``searchsorted``.

The head-run merge uses numpy's stable sort over the concatenated heads;
on a concatenation of sorted runs that is a C-speed adaptive merge.  The
per-punctuation semantics are identical to
:class:`~repro.core.impatience.ImpatienceSorter` (equivalence is
property-tested), and the Propositions 3.1–3.3 run-count bounds still
hold because a segment lands exactly where its first element would.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import PunctuationOrderError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.stats import SorterStats

__all__ = ["ColumnarImpatienceSorter"]

_NEG_INF = float("-inf")
_EMPTY = np.empty(0, dtype=np.int64)


class ColumnarImpatienceSorter:
    """Punctuation-driven sorter over numpy timestamp batches.

    API mirrors the scalar sorter with batch-shaped ingress/egress:
    ``insert_batch(array)``, ``on_punctuation(ts) -> ndarray``,
    ``flush() -> ndarray``.  Late events are dropped or adjusted per the
    late policy (RAISE raises on the first late element of a batch).
    """

    def __init__(self, late_policy=LatePolicy.DROP):
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self._chunks = []   # parallel to _tails: list of chunk-lists
        self._tails = []    # strictly descending run tails
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def run_count(self) -> int:
        """Number of live sorted runs."""
        return len(self._tails)

    @property
    def buffered(self) -> int:
        """Events currently buffered across all run chunks."""
        return sum(
            chunk.size for chunks in self._chunks for chunk in chunks
        )

    @property
    def watermark(self):
        """Timestamp of the last punctuation, or ``-inf`` before the first."""
        return self._watermark

    def insert_batch(self, values):
        """Ingest one arrival-order batch of timestamps."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("insert_batch expects a 1-D array")
        if arr.size == 0:
            return 0
        if self._has_watermark:
            late_mask = arr <= self._watermark
            n_late = int(late_mask.sum())
            if n_late:
                if self.late.policy is LatePolicy.ADJUST:
                    arr = arr.copy()
                    for _ in range(n_late):
                        self.late.admit(None, self._watermark)
                    arr[late_mask] = self._watermark
                else:
                    # DROP counts each; RAISE raises on the first.
                    for value in arr[late_mask][:1]:
                        self.late.admit(int(value), self._watermark)
                    for _ in range(n_late - 1):
                        self.late.admit(None, self._watermark)
                    arr = arr[~late_mask]
                    if arr.size == 0:
                        return 0
        self._place_segments(arr)
        self.stats.inserted += int(arr.size)
        self.stats.note_buffered()
        return int(arr.size)

    def _place_segments(self, arr):
        """Split the batch at descents; deal each ascending segment.

        Placement is the exact chunk-wise equivalent of element-wise
        Patience dealing: an ascending segment placed on run ``lo`` may
        only keep the prefix strictly below ``tails[lo-1]`` (further
        elements would have preferred an earlier run); the suffix cascades
        to a strictly earlier index, preserving the strictly-descending
        tails invariant and producing the same runs element dealing would.
        """
        if arr.size == 1:
            segments = [arr]
        else:
            cuts = np.flatnonzero(np.diff(arr) < 0) + 1
            segments = np.split(arr, cuts) if cuts.size else [arr]
        tails = self._tails
        chunks = self._chunks
        for segment in segments:
            while segment.size:
                head = int(segment[0])
                lo, hi = 0, len(tails)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if tails[mid] <= head:
                        hi = mid
                    else:
                        lo = mid + 1
                self.stats.binary_searches += 1
                if lo == 0:
                    placeable, segment = segment, segment[:0]
                else:
                    bound = tails[lo - 1]
                    split = int(np.searchsorted(segment, bound, side="left"))
                    placeable, segment = segment[:split], segment[split:]
                if lo == len(tails):
                    chunks.append([placeable])
                    tails.append(int(placeable[-1]))
                    self.stats.runs_created += 1
                else:
                    chunks[lo].append(placeable)
                    tails[lo] = int(placeable[-1])

    def on_punctuation(self, timestamp):
        """Cut and return every buffered value <= ``timestamp``, sorted."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        heads = []
        surviving_chunks = []
        surviving_tails = []
        removed = 0
        for run, tail in zip(self._chunks, self._tails):
            keep_from = 0
            for i, chunk in enumerate(run):
                if int(chunk[-1]) <= timestamp:
                    heads.append(chunk)
                    keep_from = i + 1
                    continue
                split = int(np.searchsorted(chunk, timestamp, side="right"))
                if split:
                    heads.append(chunk[:split])
                    run[i] = chunk[split:]
                keep_from = i
                break
            remaining = run[keep_from:] if keep_from else run
            if remaining:
                surviving_chunks.append(remaining)
                surviving_tails.append(tail)
            else:
                removed += 1
        self._chunks = surviving_chunks
        self._tails = surviving_tails
        if removed:
            self.stats.runs_removed += removed
        self.stats.sample_runs(len(self._tails))
        return self._merge(heads)

    def flush(self):
        """Return everything still buffered, sorted (end-of-stream)."""
        heads = [chunk for run in self._chunks for chunk in run]
        self._chunks = []
        self._tails = []
        self.stats.sample_runs(0)
        return self._merge(heads)

    def _merge(self, heads):
        if not heads:
            return _EMPTY
        if len(heads) == 1:
            merged = heads[0]
        else:
            merged = np.concatenate(heads)
            merged.sort(kind="stable")
            self.stats.merges += 1
            self.stats.merge_events += int(merged.size)
        self.stats.emitted += int(merged.size)
        return merged
