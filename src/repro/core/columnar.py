"""Columnar Impatience sort — the batched/vectorized extension.

Trill ingests columnar batches (§I-A); the natural evolution of
Impatience sort in that setting is to partition *run segments* instead of
single events: each incoming batch is split at its descents into maximal
ascending segments (a vectorized ``diff``), and each whole segment is
dealt onto the first sorted run whose tail does not exceed the segment's
head — the same placement rule, amortized over segments.  Runs are lists
of contiguous numpy chunks, so a punctuation cut pops whole chunks and
splits at most one per run via ``searchsorted``.

The head-run merge uses numpy's stable sort over the concatenated heads;
on a concatenation of sorted runs that is a C-speed adaptive merge.  The
per-punctuation semantics are identical to
:class:`~repro.core.impatience.ImpatienceSorter` (equivalence is
property-tested), and the Propositions 3.1–3.3 run-count bounds still
hold because a segment lands exactly where its first element would.

``columns`` extends the sorter from bare timestamps to whole columnar
rows: payload columns ride along each timestamp through segment
placement, punctuation cuts, and the head merge (an ``argsort``
permutation instead of an in-place sort), so a shard worker can sort an
entire :class:`~repro.engine.batch.EventBatch` without ever
materializing per-event objects.  Because segments are contiguous
slices of the incoming batch, the payload bookkeeping is all views — no
extra copies on the ingress path.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import PunctuationOrderError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.stats import SorterStats
from repro.core.strings import StringColumn

__all__ = ["ColumnarImpatienceSorter"]

_NEG_INF = float("-inf")
_EMPTY = np.empty(0, dtype=np.int64)


class ColumnarImpatienceSorter:
    """Punctuation-driven sorter over numpy timestamp batches.

    API mirrors the scalar sorter with batch-shaped ingress/egress:
    ``insert_batch(array)``, ``on_punctuation(ts) -> ndarray``,
    ``flush() -> ndarray``.  Late events are dropped or adjusted per the
    late policy (RAISE raises on the first late element of a batch).

    With ``columns=k`` the sorter carries ``k`` parallel ``int64``
    payload columns: ``insert_batch(ts, cols)`` takes the column arrays,
    and ``on_punctuation``/``flush`` return ``(ts_sorted, cols_sorted)``
    tuples instead of a bare timestamp array.  ADJUST rewrites only the
    sort timestamps; payload columns pass through untouched (the row
    engine keeps the original event and re-sorts it at the watermark —
    callers wanting that semantic pass the original time as a payload
    column).

    With ``string_columns=m`` the sorter additionally carries ``m``
    parallel :class:`~repro.core.strings.StringColumn` payloads.  They
    ride segment placement and punctuation cuts as contiguous
    arena-sharing slices (offset views, no byte copies) and the head
    merge gathers them through the same ``argsort`` permutation; the
    return value grows a third element, ``(ts, cols, scols)``.
    """

    def __init__(self, late_policy=LatePolicy.DROP, columns=0,
                 string_columns=0):
        if columns < 0:
            raise ValueError("columns must be >= 0")
        if string_columns < 0:
            raise ValueError("string_columns must be >= 0")
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self.columns = int(columns)
        self.string_columns = int(string_columns)
        self._chunks = []   # parallel to _tails: list of (ts, cols, scols)
        self._tails = []    # strictly descending run tails
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def run_count(self) -> int:
        """Number of live sorted runs."""
        return len(self._tails)

    @property
    def buffered(self) -> int:
        """Events currently buffered across all run chunks."""
        return sum(
            ts.size for chunks in self._chunks for ts, _, _ in chunks
        )

    @property
    def watermark(self):
        """Timestamp of the last punctuation, or ``-inf`` before the first."""
        return self._watermark

    def insert_batch(self, values, columns=(), string_columns=()):
        """Ingest one arrival-order batch of timestamps (+ columns)."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("insert_batch expects a 1-D array")
        if len(columns) != self.columns:
            raise ValueError(
                f"expected {self.columns} payload columns, "
                f"got {len(columns)}"
            )
        if len(string_columns) != self.string_columns:
            raise ValueError(
                f"expected {self.string_columns} string columns, "
                f"got {len(string_columns)}"
            )
        cols = tuple(np.asarray(col, dtype=np.int64) for col in columns)
        if any(col.shape != arr.shape for col in cols):
            raise ValueError("payload columns must parallel the timestamps")
        scols = tuple(
            col if isinstance(col, StringColumn)
            else StringColumn.from_values(col)
            for col in string_columns
        )
        if any(len(col) != arr.size for col in scols):
            raise ValueError("string columns must parallel the timestamps")
        if arr.size == 0:
            return 0
        if self._has_watermark:
            late_mask = arr <= self._watermark
            n_late = int(late_mask.sum())
            if n_late:
                if self.late.policy is LatePolicy.ADJUST:
                    arr = arr.copy()
                    for _ in range(n_late):
                        self.late.admit(None, self._watermark)
                    arr[late_mask] = self._watermark
                else:
                    # DROP counts each; RAISE raises on the first.
                    for value in arr[late_mask][:1]:
                        self.late.admit(int(value), self._watermark)
                    for _ in range(n_late - 1):
                        self.late.admit(None, self._watermark)
                    keep = ~late_mask
                    arr = arr[keep]
                    cols = tuple(col[keep] for col in cols)
                    scols = tuple(col.filter(keep) for col in scols)
                    if arr.size == 0:
                        return 0
        self._place_segments(arr, cols, scols)
        self.stats.inserted += int(arr.size)
        self.stats.note_buffered()
        return int(arr.size)

    def _place_segments(self, arr, cols, scols=()):
        """Split the batch at descents; deal each ascending segment.

        Placement is the exact chunk-wise equivalent of element-wise
        Patience dealing: an ascending segment placed on run ``lo`` may
        only keep the prefix strictly below ``tails[lo-1]`` (further
        elements would have preferred an earlier run); the suffix cascades
        to a strictly earlier index, preserving the strictly-descending
        tails invariant and producing the same runs element dealing would.
        """
        if arr.size == 1:
            bounds = [(0, 1)]
        else:
            cuts = np.flatnonzero(np.diff(arr) < 0) + 1
            edges = [0, *cuts.tolist(), arr.size]
            bounds = list(zip(edges[:-1], edges[1:]))
        tails = self._tails
        chunks = self._chunks
        for start, stop in bounds:
            while start < stop:
                head = int(arr[start])
                lo, hi = 0, len(tails)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if tails[mid] <= head:
                        hi = mid
                    else:
                        lo = mid + 1
                self.stats.binary_searches += 1
                if lo == 0:
                    split = stop
                else:
                    bound = tails[lo - 1]
                    split = start + int(np.searchsorted(
                        arr[start:stop], bound, side="left"
                    ))
                placeable = (
                    arr[start:split],
                    tuple(col[start:split] for col in cols),
                    tuple(col.slice(start, split) for col in scols),
                )
                if lo == len(tails):
                    chunks.append([placeable])
                    tails.append(int(arr[split - 1]))
                    self.stats.runs_created += 1
                else:
                    chunks[lo].append(placeable)
                    tails[lo] = int(arr[split - 1])
                start = split

    def on_punctuation(self, timestamp):
        """Cut and return every buffered value <= ``timestamp``, sorted."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        heads = []
        surviving_chunks = []
        surviving_tails = []
        removed = 0
        for run, tail in zip(self._chunks, self._tails):
            keep_from = 0
            for i, (ts, cols, scols) in enumerate(run):
                if int(ts[-1]) <= timestamp:
                    heads.append((ts, cols, scols))
                    keep_from = i + 1
                    continue
                split = int(np.searchsorted(ts, timestamp, side="right"))
                if split:
                    heads.append((
                        ts[:split],
                        tuple(col[:split] for col in cols),
                        tuple(col.slice(0, split) for col in scols),
                    ))
                    run[i] = (
                        ts[split:],
                        tuple(col[split:] for col in cols),
                        tuple(
                            col.slice(split, len(col)) for col in scols
                        ),
                    )
                keep_from = i
                break
            remaining = run[keep_from:] if keep_from else run
            if remaining:
                surviving_chunks.append(remaining)
                surviving_tails.append(tail)
            else:
                removed += 1
        self._chunks = surviving_chunks
        self._tails = surviving_tails
        if removed:
            self.stats.runs_removed += removed
        self.stats.sample_runs(len(self._tails))
        return self._merge(heads)

    def flush(self):
        """Return everything still buffered, sorted (end-of-stream)."""
        heads = [chunk for run in self._chunks for chunk in run]
        self._chunks = []
        self._tails = []
        self.stats.sample_runs(0)
        return self._merge(heads)

    def _merge(self, heads):
        n_scols = self.string_columns
        if not heads:
            empty = _EMPTY
            if n_scols:
                return (
                    empty, tuple(_EMPTY for _ in range(self.columns)),
                    tuple(StringColumn.empty() for _ in range(n_scols)),
                )
            if self.columns:
                return empty, tuple(_EMPTY for _ in range(self.columns))
            return empty
        if len(heads) == 1:
            merged, cols, scols = heads[0]
        elif self.columns or n_scols:
            merged = np.concatenate([ts for ts, _, _ in heads])
            order = np.argsort(merged, kind="stable")
            merged = merged[order]
            cols = tuple(
                np.concatenate([chunk[c] for _, chunk, _ in heads])[order]
                for c in range(self.columns)
            )
            # String heads share arenas; one concat + permutation gather
            # per column materializes the sorted bytes.
            scols = tuple(
                StringColumn.concat(
                    [chunk[c] for _, _, chunk in heads]
                ).take(order)
                for c in range(n_scols)
            )
            self.stats.merges += 1
            self.stats.merge_events += int(merged.size)
        else:
            merged = np.concatenate([ts for ts, _, _ in heads])
            merged.sort(kind="stable")
            cols = ()
            scols = ()
            self.stats.merges += 1
            self.stats.merge_events += int(merged.size)
        self.stats.emitted += int(merged.size)
        if n_scols:
            return merged, cols, scols
        if self.columns:
            return merged, cols
        return merged
