"""String columns, dictionaries, and offset-value coded merging.

Log analytics sorts and groups by strings — service names, trace ids,
log levels — yet the columnar fast path of this repo was numeric-only.
This module supplies the three pieces that make string keys first-class
without giving up the columnar memory model:

* :class:`StringColumn` — a byte **arena** plus ``uint32`` offsets, the
  standard columnar variable-length layout.  Row ``i`` is
  ``arena[offsets[i]:offsets[i+1]]``.  Gather (``take``), slice, concat,
  and a compact wire/spill format are all O(data), allocation-light, and
  never materialize per-row Python objects unless a row is asked for.

* :class:`StringDictionary` — **order-preserving** dictionary encoding
  for low-cardinality keys: the sorted distinct values get dense int64
  codes, so comparing/sorting/grouping codes is exactly
  comparing/sorting/grouping the strings.  Equality predicates lower to
  one code, prefix predicates to a code *range*, and every existing
  int64 engine (row, columnar, parallel, budgeted) runs unchanged.

* **Offset-value coding** (OVC) — for high-cardinality keys that cannot
  be dictionary-coded, multi-run merges compare one integer per element
  instead of re-walking long shared prefixes.  Each element of a sorted
  run is annotated with a code relative to its predecessor::

      code = ((K - lcp) << 8) | key[lcp]        # K = OVC_K > any length
      code = 0                                  # key equal to predecessor

  where ``lcp`` is the longest-common-prefix length.  During a two-way
  merge the loser's code is updated to be relative to the *winner*, so
  the next comparison is again one integer compare; a byte walk happens
  only on a genuine code tie, and it starts at the offset the tie
  encodes rather than at byte 0.  Two properties make this fast in
  CPython specifically:

  - **transitivity streaks** — while the winning run's own next code
    stays below the loser's head code, the winner keeps winning and the
    loser's code stays valid, so whole stretches are emitted with one
    C-speed ``list.extend`` and zero per-element work;
  - **duplicate short-circuit** — two head codes of 0 mean both heads
    equal the last winner, hence each other: emit without touching a
    single key byte.  Duplicate-heavy log keys make this the common
    case.

References: "Robust and Efficient Sorting with Offset-Value Coding"
and Bingmann's string-sorting survey (PAPERS.md).
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from heapq import heapify, heappop, heappush

import numpy as np

__all__ = [
    "StringColumn",
    "StringDictionary",
    "OvcCounters",
    "OVC_K",
    "as_bytes",
    "full_code",
    "code_vs",
    "ovc_annotate",
    "ovc_annotate_indices",
    "ovc_merge_runs",
    "ovc_index_merge",
    "naive_index_merge",
]

#: Strictly exceeds any supported key length, so ``(K - lcp)`` orders
#: codes by descending shared-prefix length first, tie-broken by the
#: first differing byte.
OVC_K = 1 << 20

_EMPTY_OFFSETS = np.zeros(1, dtype=np.uint32)
_ARENA_HEAD = struct.Struct("<Q")


def as_bytes(key) -> bytes:
    """Normalize a string key to bytes (UTF-8, which preserves str order)."""
    if type(key) is bytes:
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    return bytes(key)


class StringColumn:
    """Immutable variable-length byte-string column: arena + offsets.

    ``offsets`` has ``n + 1`` entries (``uint32``); row ``i`` spans
    ``arena[offsets[i]:offsets[i+1]]``.  The arena is capped at 4 GiB
    per column, which bounds a single batch/run — streams are unbounded
    because columns are chunked upstream.
    """

    __slots__ = ("arena", "offsets")

    def __init__(self, arena: bytes, offsets):
        offsets = np.asarray(offsets, dtype=np.uint32)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a 1-D array with >= 1 entry")
        self.arena = arena
        self.offsets = offsets

    @classmethod
    def from_values(cls, values) -> "StringColumn":
        """Build a column from an iterable of ``str``/``bytes`` values."""
        parts = [as_bytes(v) for v in values]
        offsets = np.zeros(len(parts) + 1, dtype=np.uint64)
        if parts:
            np.cumsum([len(p) for p in parts], out=offsets[1:])
        if int(offsets[-1]) > 0xFFFFFFFF:
            raise ValueError("string column arena exceeds 4 GiB")
        return cls(b"".join(parts), offsets.astype(np.uint32))

    @classmethod
    def empty(cls) -> "StringColumn":
        return cls(b"", _EMPTY_OFFSETS)

    @classmethod
    def concat(cls, columns) -> "StringColumn":
        """Concatenate columns row-wise (rebases offsets)."""
        columns = list(columns)
        if not columns:
            return cls.empty()
        if len(columns) == 1:
            return columns[0]
        arenas = []
        parts = [np.zeros(1, dtype=np.uint64)]
        base = 0
        for col in columns:
            arenas.append(col.arena)
            if len(col):
                parts.append(col.offsets[1:].astype(np.uint64) + base)
            base += len(col.arena)
        if base > 0xFFFFFFFF:
            raise ValueError("concatenated string arena exceeds 4 GiB")
        offsets = np.concatenate(parts).astype(np.uint32)
        return cls(b"".join(arenas), offsets)

    def __len__(self) -> int:
        return self.offsets.size - 1

    def __eq__(self, other) -> bool:
        if not isinstance(other, StringColumn):
            return NotImplemented
        return (
            len(self) == len(other)
            and bool(np.array_equal(self.offsets, other.offsets))
            and self.arena == other.arena
        )

    def __hash__(self):
        return hash((self.arena, self.offsets.tobytes()))

    def __getitem__(self, i):
        if isinstance(i, slice):
            start, stop, step = i.indices(len(self))
            if step != 1:
                raise ValueError("string column slices must be contiguous")
            return self.slice(start, stop)
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("string column index out of range")
        return self.arena[int(self.offsets[i]):int(self.offsets[i + 1])]

    def slice(self, start: int, stop: int) -> "StringColumn":
        """Contiguous row range ``[start, stop)`` as a new column."""
        if stop < start:
            raise ValueError("slice stop must be >= start")
        o = self.offsets[start:stop + 1]
        base = int(o[0])
        return StringColumn(
            self.arena[base:int(o[-1])], (o - np.uint32(base))
        )

    def take(self, indices) -> "StringColumn":
        """Gather rows by index (vectorized; the sort permutation path)."""
        idx = np.asarray(indices, dtype=np.int64)
        offs = self.offsets.astype(np.int64)
        starts = offs[idx]
        lens = offs[idx + 1] - starts
        new_offs = np.zeros(idx.size + 1, dtype=np.int64)
        if idx.size:
            np.cumsum(lens, out=new_offs[1:])
        total = int(new_offs[-1])
        if total == 0:
            return StringColumn(b"", new_offs.astype(np.uint32))
        flat = np.repeat(starts - new_offs[:-1], lens)
        flat += np.arange(total, dtype=np.int64)
        arena = np.frombuffer(self.arena, dtype=np.uint8)[flat].tobytes()
        return StringColumn(arena, new_offs.astype(np.uint32))

    def filter(self, mask) -> "StringColumn":
        """Keep rows where ``mask`` is true."""
        return self.take(np.flatnonzero(mask))

    def tolist(self) -> list:
        """Materialize every row as ``bytes``."""
        arena, offs = self.arena, self.offsets
        return [
            arena[int(offs[i]):int(offs[i + 1])] for i in range(len(self))
        ]

    def to_text_list(self) -> list:
        """Materialize every row as ``str`` (UTF-8)."""
        return [row.decode("utf-8") for row in self.tolist()]

    @property
    def nbytes(self) -> int:
        """In-memory footprint: arena bytes plus offset storage."""
        return len(self.arena) + self.offsets.nbytes

    # ---- wire / spill format: <u64 arena_len> offsets[u32 * (n+1)] arena

    def packed_size(self) -> int:
        return _ARENA_HEAD.size + self.offsets.nbytes + len(self.arena)

    def pack_into(self, buffer, offset: int = 0) -> int:
        """Serialize into ``buffer`` at ``offset``; returns the end offset."""
        _ARENA_HEAD.pack_into(buffer, offset, len(self.arena))
        offset += _ARENA_HEAD.size
        end = offset + self.offsets.nbytes
        buffer[offset:end] = self.offsets.tobytes()
        offset = end
        end = offset + len(self.arena)
        buffer[offset:end] = self.arena
        return end

    @classmethod
    def unpack_from(cls, buffer, n: int, offset: int = 0):
        """Deserialize an ``n``-row column; returns ``(column, end)``.

        The arena is copied out of ``buffer`` (wire buffers are reused
        ring segments, so zero-copy would alias live transport memory).
        """
        (arena_len,) = _ARENA_HEAD.unpack_from(buffer, offset)
        offset += _ARENA_HEAD.size
        end = offset + 4 * (n + 1)
        offsets = np.frombuffer(bytes(buffer[offset:end]), dtype=np.uint32)
        offset = end
        end = offset + arena_len
        return cls(bytes(buffer[offset:end]), offsets), end

    def __repr__(self):
        return f"StringColumn(n={len(self)}, arena={len(self.arena)}B)"


class StringDictionary:
    """Order-preserving dictionary: sorted distinct values -> dense codes.

    ``code(a) < code(b)``  iff  ``a < b`` (bytewise), so every integer
    engine in the repo sorts/groups dictionary codes exactly as it would
    the strings themselves — that equivalence is what lets string plans
    ride the columnar, parallel, and budgeted paths byte-identically.
    """

    __slots__ = ("values", "_index")

    def __init__(self, values):
        vals = sorted({as_bytes(v) for v in values})
        self.values = vals
        self._index = {v: i for i, v in enumerate(vals)}

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value) -> bool:
        return as_bytes(value) in self._index

    def code(self, value) -> int:
        """Code of ``value``, or ``-1`` when absent (matches nothing:
        valid codes are dense non-negatives)."""
        return self._index.get(as_bytes(value), -1)

    def encode(self, values):
        """Encode an iterable of values to an ``int64`` code array."""
        index = self._index
        out = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            try:
                out[i] = index[as_bytes(v)]
            except KeyError:
                raise KeyError(
                    f"value {v!r} not in dictionary ({len(index)} entries)"
                ) from None
        return out

    def decode(self, code: int) -> bytes:
        return self.values[code]

    def decode_text(self, code: int) -> str:
        return self.values[code].decode("utf-8")

    def decode_column(self, codes) -> StringColumn:
        """Decode a code array back to a :class:`StringColumn`."""
        return self.column().take(np.asarray(codes, dtype=np.int64))

    def column(self) -> StringColumn:
        """The sorted distinct values as a column (row ``i`` = code ``i``)."""
        return StringColumn.from_values(self.values)

    def prefix_range(self, prefix):
        """Half-open code range ``[lo, hi)`` of values starting with
        ``prefix``; empty range when no value matches."""
        p = as_bytes(prefix)
        lo = bisect_left(self.values, p)
        trimmed = p.rstrip(b"\xff")
        if not trimmed:
            hi = len(self.values)
        else:
            successor = trimmed[:-1] + bytes([trimmed[-1] + 1])
            hi = bisect_left(self.values, successor)
        return lo, hi

    def __repr__(self):
        return f"StringDictionary(n={len(self.values)})"


class OvcCounters:
    """Instrumentation for OVC merges: how much byte work was avoided."""

    __slots__ = ("ties", "tie_bytes", "dup_hits")

    def __init__(self):
        self.ties = 0        # code ties resolved by a byte walk
        self.tie_bytes = 0   # bytes touched across all tie walks
        self.dup_hits = 0    # code-0 ties resolved with zero byte work

    def __repr__(self):
        return (
            f"OvcCounters(ties={self.ties}, tie_bytes={self.tie_bytes}, "
            f"dup_hits={self.dup_hits})"
        )


def _check_length(k: bytes):
    if len(k) >= OVC_K:
        raise ValueError(
            f"key of {len(k)} bytes exceeds the OVC length bound {OVC_K}"
        )


def full_code(key) -> int:
    """OVC code of ``key`` relative to the virtual empty predecessor."""
    k = as_bytes(key)
    if not k:
        return 0
    _check_length(k)
    return (OVC_K << 8) | k[0]


def code_vs(prev, key) -> int:
    """OVC code of ``key`` relative to ``prev``; requires ``prev <= key``.

    This is the incremental form used by OVC-annotated run pools: run
    generation already compares the new key against the run tail to
    place it, so deriving the code here reuses that same prefix walk
    (the LCP-aware multikey-run-generation idea from Bingmann's survey).
    """
    p = as_bytes(prev)
    k = as_bytes(key)
    if k == p:
        return 0
    _check_length(k)
    m = min(len(p), len(k))
    l = 0
    while l < m and p[l] == k[l]:
        l += 1
    return ((OVC_K - l) << 8) | k[l]


def ovc_annotate(keys) -> list:
    """Annotate an ascending run of ``str``/``bytes`` keys with OVC codes.

    ``codes[0]`` is relative to the virtual empty string; ``codes[i]``
    to ``keys[i-1]``.  Equal adjacent keys get code 0.
    """
    codes = [0] * len(keys)
    prev = b""
    for t, key in enumerate(keys):
        k = as_bytes(key)
        if k == prev:
            continue
        _check_length(k)
        m = min(len(prev), len(k))
        l = 0
        while l < m and prev[l] == k[l]:
            l += 1
        codes[t] = ((OVC_K - l) << 8) | k[l]
        prev = k
    return codes


def ovc_annotate_indices(indices, column: StringColumn) -> list:
    """OVC codes for a run of row *indices* into an arena column."""
    arena = column.arena
    offs = column.offsets.tolist()
    codes = [0] * len(indices)
    prev = b""
    for t, idx in enumerate(indices):
        k = arena[offs[idx]:offs[idx + 1]]
        if k == prev:
            continue
        m = min(len(prev), len(k))
        l = 0
        while l < m and prev[l] == k[l]:
            l += 1
        codes[t] = ((OVC_K - l) << 8) | k[l]
        prev = k
    _check_length(prev)
    return codes


def _resolve_tie(ka: bytes, kb: bytes, code: int, counters):
    """Byte-resolve a code tie; returns ``(winner, loser_code)``.

    ``winner`` is 0 when the left key wins or the keys are equal (left
    is emitted first — stability), 1 when the right key wins.  The walk
    starts at the offset both codes encode: both keys share ``lcp``
    bytes with the last winner *and* the same byte right after it, so
    comparison resumes at ``lcp + 1``.
    """
    l = (OVC_K - (code >> 8)) + 1
    m = min(len(ka), len(kb))
    start = l
    while l < m and ka[l] == kb[l]:
        l += 1
    if counters is not None:
        counters.ties += 1
        counters.tie_bytes += l - start + 1
    la, lb = len(ka), len(kb)
    if l >= la and l >= lb:                       # equal keys
        return 0, 0
    if l >= lb or (l < la and kb[l] < ka[l]):     # right smaller
        return 1, ((OVC_K - l) << 8) | ka[l]
    return 0, ((OVC_K - l) << 8) | kb[l]          # left smaller / prefix


def _ovc_merge_two(left, right, stats=None, counters=None):
    """Two-way OVC merge of annotated ``(keys, items, codes)`` runs.

    Ties favor left (stable in run order).  The output run is itself
    OVC-annotated, so Huffman towers of binary merges never re-derive
    codes.  The streak loop is the CPython-honest core of the win: runs
    of consecutive winners are located by an integer scan and moved with
    ``list.extend`` — no per-element interpreter work, no key bytes.
    """
    ak, av, ac = left
    bk, bv, bc = right
    out_k = []
    out_v = []
    out_c = []
    i = j = 0
    na, nb = len(ak), len(bk)
    ca, cb = ac[0], bc[0]
    while True:
        if ca < cb:
            t = i + 1
            while t < na and ac[t] < cb:
                t += 1
            out_k.extend(ak[i:t])
            out_v.extend(av[i:t])
            out_c.append(ca)
            out_c.extend(ac[i + 1:t])
            i = t
            if i == na:
                break
            ca = ac[i]
        elif cb < ca:
            t = j + 1
            while t < nb and bc[t] < ca:
                t += 1
            out_k.extend(bk[j:t])
            out_v.extend(bv[j:t])
            out_c.append(cb)
            out_c.extend(bc[j + 1:t])
            j = t
            if j == nb:
                break
            cb = bc[j]
        elif ca == 0:
            # Both heads equal the last winner, hence each other: emit
            # left without touching a single key byte.
            if counters is not None:
                counters.dup_hits += 1
            out_k.append(ak[i])
            out_v.append(av[i])
            out_c.append(0)
            i += 1
            if i == na:
                break
            ca = ac[i]
        else:
            winner, loser_code = _resolve_tie(
                as_bytes(ak[i]), as_bytes(bk[j]), ca, counters
            )
            if winner:
                out_k.append(bk[j])
                out_v.append(bv[j])
                out_c.append(cb)
                j += 1
                ca = loser_code
                if j == nb:
                    break
                cb = bc[j]
            else:
                out_k.append(ak[i])
                out_v.append(av[i])
                out_c.append(ca)
                i += 1
                cb = loser_code
                if i == na:
                    break
                ca = ac[i]
    if i < na:
        boundary = len(out_c)
        out_k.extend(ak[i:])
        out_v.extend(av[i:])
        out_c.extend(ac[i:])
        out_c[boundary] = ca
    else:
        boundary = len(out_c)
        out_k.extend(bk[j:])
        out_v.extend(bv[j:])
        out_c.extend(bc[j:])
        out_c[boundary] = cb
    if stats is not None:
        stats.merges += 1
        stats.merge_events += len(out_k)
    return out_k, out_v, out_c


def ovc_merge_runs(runs, stats=None, counters=None):
    """Huffman-scheduled OVC merge of string-keyed runs.

    ``runs`` are ``(keys, items)`` pairs or pre-annotated
    ``(keys, items, codes)`` triples (as produced by an OVC-annotated
    :class:`~repro.core.runs.RunPool`); un-annotated runs are coded on
    entry.  Returns one merged ``(keys, items)`` pair; keyless runs
    (``items is keys``) come back in the same shared form.
    """
    live = []
    shared = True
    for run in runs:
        if len(run) == 3:
            keys, items, codes = run
        else:
            keys, items = run
            codes = ovc_annotate(keys)
        if not keys:
            continue
        shared = shared and items is keys
        live.append((keys, items, codes))
    if not live:
        empty = []
        return empty, empty
    if len(live) == 1:
        keys, items, _ = live[0]
        return (keys, keys) if shared else (keys, items)
    heap = [(len(keys), seq, run) for seq, run in enumerate(live)]
    heapify(heap)
    seq = len(heap)
    while len(heap) > 1:
        _, _, a = heappop(heap)
        _, _, b = heappop(heap)
        merged = _ovc_merge_two(a, b, stats, counters)
        heappush(heap, (len(merged[0]), seq, merged))
        seq += 1
    keys, items, _ = heap[0][2]
    return (keys, keys) if shared else (keys, items)


def _ovc_index_merge_two(left, right, arena, offs, stats=None, counters=None):
    """Two-way OVC merge over row-index runs into a shared arena column."""
    ai, ac = left
    bi, bc = right
    out_i = []
    out_c = []
    i = j = 0
    na, nb = len(ai), len(bi)
    ca, cb = ac[0], bc[0]
    while True:
        if ca < cb:
            t = i + 1
            while t < na and ac[t] < cb:
                t += 1
            out_i.extend(ai[i:t])
            out_c.append(ca)
            out_c.extend(ac[i + 1:t])
            i = t
            if i == na:
                break
            ca = ac[i]
        elif cb < ca:
            t = j + 1
            while t < nb and bc[t] < ca:
                t += 1
            out_i.extend(bi[j:t])
            out_c.append(cb)
            out_c.extend(bc[j + 1:t])
            j = t
            if j == nb:
                break
            cb = bc[j]
        elif ca == 0:
            if counters is not None:
                counters.dup_hits += 1
            out_i.append(ai[i])
            out_c.append(0)
            i += 1
            if i == na:
                break
            ca = ac[i]
        else:
            ia, ib = ai[i], bi[j]
            ka = arena[offs[ia]:offs[ia + 1]]
            kb = arena[offs[ib]:offs[ib + 1]]
            winner, loser_code = _resolve_tie(ka, kb, ca, counters)
            if winner:
                out_i.append(ib)
                out_c.append(cb)
                j += 1
                ca = loser_code
                if j == nb:
                    break
                cb = bc[j]
            else:
                out_i.append(ia)
                out_c.append(ca)
                i += 1
                cb = loser_code
                if i == na:
                    break
                ca = ac[i]
    if i < na:
        boundary = len(out_c)
        out_i.extend(ai[i:])
        out_c.extend(ac[i:])
        out_c[boundary] = ca
    else:
        boundary = len(out_c)
        out_i.extend(bi[j:])
        out_c.extend(bc[j:])
        out_c[boundary] = cb
    if stats is not None:
        stats.merges += 1
        stats.merge_events += len(out_i)
    return out_i, out_c


def ovc_index_merge(runs, column: StringColumn, stats=None, counters=None):
    """Huffman-scheduled OVC merge of row-index runs over ``column``.

    ``runs`` are index lists (annotated on entry) or ``(indices, codes)``
    pairs.  Returns the merged index list.  This is the representation
    the columnar sorter and the string-sort benchmark use: keys stay in
    the arena; the merge moves only integers.
    """
    arena = column.arena
    offs = column.offsets.tolist()
    live = []
    for run in runs:
        if isinstance(run, tuple):
            indices, codes = run
        else:
            indices = run
            codes = ovc_annotate_indices(run, column)
        if indices:
            live.append((indices, codes))
    if not live:
        return []
    if len(live) == 1:
        return live[0][0]
    heap = [(len(indices), seq, run) for seq, run in enumerate(live)]
    heapify(heap)
    seq = len(heap)
    while len(heap) > 1:
        _, _, a = heappop(heap)
        _, _, b = heappop(heap)
        merged = _ovc_index_merge_two(a, b, arena, offs, stats, counters)
        heappush(heap, (len(merged[0]), seq, merged))
        seq += 1
    return heap[0][2][0]


def _naive_index_merge_two(a, b, arena, offs):
    """Reference two-way merge: per-element arena slice + bytes compare.

    This is what a generic comparator merge costs in the columnar
    memory model — every element the cursor advances past must be
    sliced out of the arena and compared bytewise from byte 0.  Kept as
    the benchmark baseline and the differential-test oracle.
    """
    out = []
    append = out.append
    i = j = 0
    na, nb = len(a), len(b)
    ia = a[0]
    ib = b[0]
    ka = arena[offs[ia]:offs[ia + 1]]
    kb = arena[offs[ib]:offs[ib + 1]]
    while True:
        if kb < ka:
            append(ib)
            j += 1
            if j == nb:
                break
            ib = b[j]
            kb = arena[offs[ib]:offs[ib + 1]]
        else:
            append(ia)
            i += 1
            if i == na:
                break
            ia = a[i]
            ka = arena[offs[ia]:offs[ia + 1]]
    out.extend(a[i:] if i < na else b[j:])
    return out


def naive_index_merge(runs, column: StringColumn):
    """Huffman-scheduled naive merge of row-index runs over ``column``."""
    arena = column.arena
    offs = column.offsets.tolist()
    live = [run for run in runs if run]
    if not live:
        return []
    if len(live) == 1:
        return live[0]
    heap = [(len(run), seq, run) for seq, run in enumerate(live)]
    heapify(heap)
    seq = len(heap)
    while len(heap) > 1:
        _, _, a = heappop(heap)
        _, _, b = heappop(heap)
        merged = _naive_index_merge_two(a, b, arena, offs)
        heappush(heap, (len(merged), seq, merged))
        seq += 1
    return heap[0][2]
