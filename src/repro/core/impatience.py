"""Impatience sort — incremental Patience sort (Section III-D/E).

Impatience sort keeps the Patience partition phase but makes the merge phase
incremental: on the i-th punctuation with timestamp ``T_i`` it cuts from the
head of every run the prefix of events with time <= ``T_i`` (cheap, because
runs are sorted), merges only those *head runs*, and emits the result.  Runs
emptied by the cut are removed, which gradually heals the damage done by
bursts of severely late events (Figure 5).

Two optimizations from Section III-E are built in and individually
toggleable for the Figure 7 ablation:

* ``huffman_merge`` — merge smallest head runs first (Section III-E1);
* ``speculative`` — speculative run selection, probing the run that
  received the previous element before binary-searching (Section III-E2).
"""

from __future__ import annotations

from repro.core.late import LateEventTracker, LatePolicy
from repro.core.errors import PunctuationOrderError
from repro.core.merge import MERGE_STRATEGIES, merge_runs
from repro.core.runs import RunPool
from repro.core.stats import SorterStats

__all__ = ["ImpatienceSorter"]

_NEG_INF = float("-inf")

# ``tie_break="arrival"`` lifts integer sort keys to
# ``key * _SEQ_SPAN + arrival_seq`` so equal keys become a strict total
# order.  The span bounds the number of inserts over a sorter's
# lifetime (~2.8e14) — far beyond any stream this process can hold.
_SEQ_SPAN = 1 << 48
_SEQ_MAX = _SEQ_SPAN - 1




class ImpatienceSorter:
    """Online, punctuation-driven adaptive sorter.

    Parameters
    ----------
    key:
        Sort-key extractor; ``None`` sorts items by themselves.
    huffman_merge:
        Use the Huffman (smallest-first) merge schedule for head runs;
        when ``False``, head runs are merged pairwise in creation order.
    merge:
        Explicit merge-strategy name from
        :data:`repro.core.merge.MERGE_STRATEGIES` (``huffman``,
        ``pairwise``, ``kway``, or ``ovc``); overrides ``huffman_merge``
        when given.  ``kway`` is the classic Patience heap merge, kept
        for differential testing and comparison.  ``ovc`` targets string
        sort keys: runs carry offset-value codes from the partition
        phase and merges compare one integer per element instead of
        re-walking shared prefixes (non-string keys silently fall back
        to ``huffman``).
    speculative:
        Enable speculative run selection in the partition phase.
    late_policy:
        What to do with events at or before the last punctuation — see
        :class:`repro.core.late.LatePolicy`.
    sample_every:
        When set, record a run-count sample every that many inserts
        (in addition to the sample taken at every punctuation) — the
        Figure 5 series.
    placement:
        Run-placement search on an SRS miss: ``"bisect"`` (default, C
        binary search over negated tails) or ``"binary"`` (pure-Python
        binary search; the pre-optimization baseline, kept for the
        Figure 8 placement ablation).
    tie_break:
        ``"arrival"`` (default for keyed sorters) makes emission order a
        *total* deterministic order: items with equal sort keys emit in
        arrival order, matching the tie order the columnar and external
        sorters already guarantee.  Internally each integer key is
        lifted to ``key * 2**48 + arrival_seq``, so placement, cuts, and
        every merge strategy see strictly distinct keys (requires
        integer keys).  ``"none"`` keeps the raw keys — tie order then
        depends on run placement and the merge schedule, which is fine
        when equal-keyed items are interchangeable (e.g. keyless bare
        timestamps, which always use ``"none"``).

    Examples
    --------
    >>> s = ImpatienceSorter()
    >>> for x in [2, 6, 5, 1]:
    ...     s.insert(x)
    >>> s.on_punctuation(2)
    [1, 2]
    >>> for x in [4, 3, 7, 8]:
    ...     s.insert(x)
    >>> s.on_punctuation(4)
    [3, 4]
    >>> s.flush()
    [5, 6, 7, 8]
    """

    def __init__(self, key=None, huffman_merge=True, speculative=True,
                 late_policy=LatePolicy.DROP, sample_every=None, merge=None,
                 quarantine=None, placement="bisect", tie_break=None):
        self.key = key
        if tie_break is None:
            tie_break = "none" if key is None else "arrival"
        if tie_break not in ("arrival", "none"):
            raise ValueError(
                f"tie_break must be 'arrival' or 'none', not {tie_break!r}"
            )
        # Keyless sorters emit the keys themselves: equal keys are
        # indistinguishable, so lifting would only corrupt the output.
        self.tie_break = "none" if key is None else tie_break
        self._stable = self.tie_break == "arrival"
        self._seq = 0
        if merge is None:
            merge = "huffman" if huffman_merge else "pairwise"
        elif merge not in MERGE_STRATEGIES:
            raise ValueError(
                f"unknown merge strategy {merge!r}; "
                f"expected one of {sorted(MERGE_STRATEGIES)}"
            )
        self.merge = merge
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy, quarantine=quarantine)
        self.sample_every = sample_every
        # The "ovc" strategy wants runs pre-annotated with offset-value
        # codes; the pool demotes the flag by itself on non-string keys.
        self._pool = RunPool(speculative=speculative, keyless=key is None,
                             stats=self.stats, placement=placement,
                             annotate=merge == "ovc")
        # Ingress batch (Trill ingests columnar batches): inserts append
        # here in O(1); the partition phase consumes the whole batch at
        # the next punctuation/flush.  A constant-factor staging area —
        # per-punctuation behaviour of the algorithm is unchanged.
        self._pending_keys = []
        self._pending_items = []
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def run_count(self) -> int:
        """Number of live sorted runs (ingress batch partitioned first)."""
        self._flush_pending()
        return len(self._pool)

    @property
    def buffered(self) -> int:
        """Events currently buffered (runs + ingress batch)."""
        return (
            sum(len(run) for run in self._pool.runs)
            + len(self._pending_keys)
        )

    @property
    def watermark(self):
        """Timestamp of the last punctuation, or ``-inf`` before the first."""
        return self._watermark

    def insert(self, item):
        """Ingest one out-of-order item.

        Items with key <= the last punctuation are handled by the late
        policy (dropped, adjusted to just after the punctuation, or raised).
        Returns ``True`` when the item was admitted.
        """
        key = item if self.key is None else self.key(item)
        if self._has_watermark and key <= self._watermark:
            key = self.late.admit(key, self._watermark)
            if key is None:
                return False
            if self.key is None:
                item = key  # bare timestamps: adjusting the key IS the item
        if self._stable:
            key = self._lift(key)
        self._pending_keys.append(key)
        if self.key is not None:
            self._pending_items.append(item)
        self.stats.inserted += 1
        self.stats.note_buffered()
        if (
            self.sample_every
            and self.stats.inserted % self.sample_every == 0
        ):
            self._flush_pending()
            self.stats.sample_runs(len(self._pool))
        return True

    def extend(self, items):
        """Insert every item from an iterable.

        Stages through the ingress batch when no late events are present
        (the common case); any batch containing a late event falls back to
        per-item :meth:`insert` so the late policy applies.
        """
        items = list(items)
        if not items:
            return
        keys = items if self.key is None else list(map(self.key, items))
        if self.sample_every or (
            self._has_watermark and min(keys) <= self._watermark
        ):
            for item in items:
                self.insert(item)
            return
        if self._stable:
            keys = [self._lift(key) for key in keys]
        self._pending_keys.extend(keys)
        if self.key is not None:
            self._pending_items.extend(items)
        self.stats.inserted += len(items)
        self.stats.note_buffered()

    def on_punctuation(self, timestamp):
        """Sort and emit all buffered items with key <= ``timestamp``.

        Returns the emitted items in ascending key order.  Punctuations must
        be non-decreasing; a regressing punctuation raises
        :class:`repro.core.errors.PunctuationOrderError`.
        """
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        self._flush_pending()
        if self._stable:
            # Release every lifted key whose raw key is <= timestamp.
            heads = self._pool.cut_heads(timestamp * _SEQ_SPAN + _SEQ_MAX)
        else:
            heads = self._pool.cut_heads(timestamp)
        self.stats.sample_runs(len(self._pool))
        if not heads:
            return []
        _, items = merge_runs(heads, self.merge, self.stats)
        self.stats.emitted += len(items)
        return items

    def flush(self):
        """Emit everything still buffered, in order (end-of-stream)."""
        self._flush_pending()
        runs = self._pool.drain()
        self.stats.sample_runs(0)
        if not runs:
            return []
        _, items = merge_runs(runs, self.merge, self.stats)
        self.stats.emitted += len(items)
        return items

    def _lift(self, key):
        """Lift one raw key to ``key * 2**48 + arrival_seq``.

        A non-integer *first* key demotes the sorter to raw keys (same
        spirit as the bisect -> binary placement demotion); a non-integer
        key after integer ones cannot be ordered against already-lifted
        keys and raises.
        """
        if not self._stable:
            return key
        if type(key) is not int:
            try:
                coerced = int(key)
            except (TypeError, ValueError):
                coerced = None
            if coerced is None or coerced != key:
                if self._seq == 0:
                    self._stable = False
                    self.tie_break = "none"
                    return key
                raise TypeError(
                    f"tie_break='arrival' saw non-integer sort key {key!r} "
                    f"after integer keys; construct the sorter with "
                    f"tie_break='none' for non-integer keys"
                )
            key = coerced
        seq = self._seq
        self._seq = seq + 1
        return key * _SEQ_SPAN + seq

    def _flush_pending(self):
        """Partition the staged ingress batch into the run pool."""
        keys = self._pending_keys
        if not keys:
            return
        items = keys if self.key is None else self._pending_items
        self._pool.insert_batch(keys, items)
        self._pending_keys = []
        self._pending_items = []

    def __repr__(self):
        return (
            f"ImpatienceSorter(runs={self.run_count}, "
            f"buffered={self.buffered}, watermark={self._watermark!r})"
        )
