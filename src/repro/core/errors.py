"""Exception types raised by the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LateEventError(ReproError):
    """An event arrived with a timestamp at or before an emitted punctuation.

    Raised only when the sorter/ingress is configured with
    :data:`repro.core.late.LatePolicy.RAISE`.
    """

    def __init__(self, event_time, punctuation_time):
        super().__init__(
            f"event time {event_time!r} is <= last punctuation "
            f"{punctuation_time!r}"
        )
        self.event_time = event_time
        self.punctuation_time = punctuation_time


class PunctuationOrderError(ReproError):
    """A punctuation regressed: its timestamp is below an earlier one."""

    def __init__(self, timestamp, previous):
        super().__init__(
            f"punctuation {timestamp!r} regresses below previous "
            f"punctuation {previous!r}"
        )
        self.timestamp = timestamp
        self.previous = previous


class QueryBuildError(ReproError):
    """A streaming query was composed incorrectly.

    Examples: applying an order-sensitive operator to a
    ``DisorderedStreamable``, subscribing twice to a single-use source, or
    passing non-increasing reorder latencies to the Impatience framework.
    """
