"""Exception types raised by the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LateEventError(ReproError):
    """An event arrived with a timestamp at or before an emitted punctuation.

    Raised only when the sorter/ingress is configured with
    :data:`repro.core.late.LatePolicy.RAISE`.
    """

    def __init__(self, event_time, punctuation_time):
        super().__init__(
            f"event time {event_time!r} is <= last punctuation "
            f"{punctuation_time!r}"
        )
        self.event_time = event_time
        self.punctuation_time = punctuation_time


class PunctuationOrderError(ReproError):
    """A punctuation regressed: its timestamp is below an earlier one."""

    def __init__(self, timestamp, previous):
        super().__init__(
            f"punctuation {timestamp!r} regresses below previous "
            f"punctuation {previous!r}"
        )
        self.timestamp = timestamp
        self.previous = previous


class QueryBuildError(ReproError):
    """A streaming query was composed incorrectly.

    Examples: applying an order-sensitive operator to a
    ``DisorderedStreamable``, subscribing twice to a single-use source, or
    passing non-increasing reorder latencies to the Impatience framework.
    """


class CheckpointError(ReproError, ValueError):
    """A sorter checkpoint could not be taken or restored.

    Raised for unsupported sorter configurations (keyed sorters are not
    checkpointable), unknown checkpoint formats, and corrupt state
    (non-ascending runs, tails-invariant violations).  Subclasses
    :class:`ValueError` so pre-existing callers that caught the old bare
    ``ValueError`` keep working.
    """


class DatasetFormatError(ReproError, ValueError):
    """A dataset file (CSV) is malformed.

    Carries the offending path and, for per-row failures, the 1-based row
    number (header = row 1), so shell pipelines and operators can locate
    the bad input.  Subclasses :class:`ValueError` for backward
    compatibility with callers catching the old bare errors.
    """

    def __init__(self, path, message, row=None):
        location = f"{path}:{row}" if row is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.row = row


class MalformedEventError(ReproError):
    """A stream element is neither a valid event nor a punctuation.

    Raised by the supervised runtime's ingress guard when quarantine is
    disabled; with a quarantine ledger configured the element is recorded
    and skipped instead.
    """

    def __init__(self, element):
        super().__init__(f"malformed stream element: {element!r}")
        self.element = element


class ChaosSpecError(ReproError, ValueError):
    """A chaos-injection spec string could not be parsed.

    See ``docs/resilience.md`` for the spec grammar.
    """


class ReplayDivergenceError(ReproError):
    """Recovery replay re-emitted output that differs from what was
    already delivered.

    Supervised recovery assumes the pipeline is deterministic: replaying
    the journaled ingress prefix must re-produce the already-delivered
    outputs byte-for-byte so they can be deduplicated.  This error means
    an operator in the pipeline is non-deterministic (or mutated shared
    state) and exactly-once delivery cannot be guaranteed.
    """


class SupervisionExhaustedError(ReproError):
    """The supervised runtime gave up: retry/restart budget exhausted.

    The original failure is attached as ``__cause__``.
    """
