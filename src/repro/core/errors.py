"""Exception types raised by the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LateEventError(ReproError):
    """An event arrived with a timestamp at or before an emitted punctuation.

    Raised only when the sorter/ingress is configured with
    :data:`repro.core.late.LatePolicy.RAISE`.
    """

    def __init__(self, event_time, punctuation_time):
        super().__init__(
            f"event time {event_time!r} is <= last punctuation "
            f"{punctuation_time!r}"
        )
        self.event_time = event_time
        self.punctuation_time = punctuation_time

    def __reduce__(self):
        # Default Exception pickling replays args=(message,) against the
        # two-parameter __init__; worker processes forward these across
        # the exchange, so round-trip with the constructor arguments.
        return (type(self), (self.event_time, self.punctuation_time))


class PunctuationOrderError(ReproError):
    """A punctuation regressed: its timestamp is below an earlier one."""

    def __init__(self, timestamp, previous):
        super().__init__(
            f"punctuation {timestamp!r} regresses below previous "
            f"punctuation {previous!r}"
        )
        self.timestamp = timestamp
        self.previous = previous

    def __reduce__(self):
        return (type(self), (self.timestamp, self.previous))


class QueryBuildError(ReproError):
    """A streaming query was composed incorrectly.

    Examples: applying an order-sensitive operator to a
    ``DisorderedStreamable``, subscribing twice to a single-use source, or
    passing non-increasing reorder latencies to the Impatience framework.
    """


class CheckpointError(ReproError, ValueError):
    """A sorter checkpoint could not be taken or restored.

    Raised for unsupported sorter configurations (keyed sorters are not
    checkpointable), unknown checkpoint formats, and corrupt state
    (non-ascending runs, tails-invariant violations).  Subclasses
    :class:`ValueError` so pre-existing callers that caught the old bare
    ``ValueError`` keep working.
    """


class DatasetFormatError(ReproError, ValueError):
    """A dataset file (CSV) is malformed.

    Carries the offending path and, for per-row failures, the 1-based row
    number (header = row 1), so shell pipelines and operators can locate
    the bad input.  Subclasses :class:`ValueError` for backward
    compatibility with callers catching the old bare errors.
    """

    def __init__(self, path, message, row=None):
        location = f"{path}:{row}" if row is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.row = row


class MalformedEventError(ReproError):
    """A stream element is neither a valid event nor a punctuation.

    Raised by the supervised runtime's ingress guard when quarantine is
    disabled; with a quarantine ledger configured the element is recorded
    and skipped instead.
    """

    def __init__(self, element):
        super().__init__(f"malformed stream element: {element!r}")
        self.element = element


class ChaosSpecError(ReproError, ValueError):
    """A chaos-injection spec string could not be parsed.

    See ``docs/resilience.md`` for the spec grammar.
    """


class ReplayDivergenceError(ReproError):
    """Recovery replay re-emitted output that differs from what was
    already delivered.

    Supervised recovery assumes the pipeline is deterministic: replaying
    the journaled ingress prefix must re-produce the already-delivered
    outputs byte-for-byte so they can be deduplicated.  This error means
    an operator in the pipeline is non-deterministic (or mutated shared
    state) and exactly-once delivery cannot be guaranteed.
    """


class SupervisionExhaustedError(ReproError):
    """The supervised runtime gave up: retry/restart budget exhausted.

    The original failure is attached as ``__cause__``.
    """


class SpillCorruptionError(ReproError, OSError):
    """A spilled run file on disk is corrupt, truncated, or unreadable.

    Carries the offending file path and the byte offset of the bad
    block so operators (and humans) can locate the damage.  Like
    :class:`WorkerCrashError` this failure is environmental rather than
    semantic — transient read corruption is restartable under the
    sorter supervisor (the file on disk may be fine even when a read
    was mangled in flight), while persistent corruption exhausts the
    restart budget and surfaces as
    :class:`SupervisionExhaustedError` with this error as the cause.
    Never a silent wrong answer: every spilled block is CRC-checked on
    the way back in.
    """

    def __init__(self, path, offset, detail=""):
        message = f"spill file {path} corrupt at byte offset {offset}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.path = str(path)
        self.offset = int(offset)
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.path, self.offset, self.detail))


class WorkerCrashError(ReproError):
    """A parallel shard worker process died mid-stream.

    Carries everything a supervised rerun needs: the shard index, the
    worker's last *acknowledged* ingress journal offset (every journal
    element up to it was provably processed and its output delivered),
    and the process exit code.  Unlike the semantic :class:`ReproError`
    family this failure is environmental — the parallel supervisor
    (:func:`repro.resilience.parallel.run_parallel_supervised`) treats
    it as restartable and replays the journal through a fresh pool.
    """

    def __init__(self, shard, journal_offset, exitcode=None, detail=""):
        message = (
            f"worker for shard {shard} died"
            f"{f' (exit code {exitcode})' if exitcode is not None else ''}"
            f" with journal acknowledged through offset {journal_offset}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.shard = shard
        self.journal_offset = journal_offset
        self.exitcode = exitcode
        self.detail = detail

    def __reduce__(self):
        return (
            type(self),
            (self.shard, self.journal_offset, self.exitcode, self.detail),
        )


class ServeProtocolError(ReproError, ValueError):
    """A serve-layer frame, command, or standing-query spec is invalid.

    Raised by the ingress server's protocol parser and by
    :func:`repro.serve.protocol.parse_query_spec`.  Connection handlers
    translate it into an ``ERR`` reply (or a quarantine record for data
    frames) rather than letting it kill the service.
    """
