"""Sorted-run data structures for Patience and Impatience sort.

A *sorted run* is an ascending (by sort key) sequence of items grown at the
tail by the partition phase and — for Impatience sort — consumed from the
head on every punctuation (Section III-D of the paper).  Head cuts are the
hot path that lets Impatience sort avoid touching the whole buffer, so
:class:`SortedRun` cuts in O(log n + h) for a head of h items using an
offset pointer instead of repeated list slicing.

:class:`RunPool` owns the set of runs and the *tails array* — the keys of
the last element of every run, kept in strictly descending order, which is
the invariant that makes binary-search placement (and the speculative run
selection shortcut of Section III-E2) correct.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.strings import code_vs, full_code, ovc_annotate

__all__ = ["SortedRun", "RunPool"]

# Compact a run's backing lists once the dead prefix exceeds both this many
# slots and half of the backing storage.  Keeps head cuts amortized O(h).
_COMPACT_THRESHOLD = 64


class SortedRun:
    """One ascending run: parallel key/item lists with a live-start offset.

    Keys are stored alongside items so that bisection and merging never
    re-invoke the (potentially expensive) key function.  In *keyless* mode
    (items are their own sort keys — bare timestamps) the two lists are one
    shared object, halving storage and merge traffic.

    In *annotated* mode (string sort keys under the ``"ovc"`` merge
    strategy) the run also carries a parallel list of offset-value codes
    — each element's OVC code relative to its run predecessor — built
    incrementally on append, where the placement comparison has already
    paid for the prefix walk.  Head cuts then hand the merge phase
    pre-annotated ``(keys, items, codes)`` runs so no merge ever walks a
    shared prefix twice.
    """

    __slots__ = ("keys", "items", "codes", "start")

    def __init__(self, keyless=False, annotate=False):
        self.keys = []
        self.items = self.keys if keyless else []
        self.codes = [] if annotate else None
        self.start = 0

    def __len__(self) -> int:
        return len(self.keys) - self.start

    def __bool__(self) -> bool:
        return len(self.keys) > self.start

    @property
    def tail_key(self):
        """Key of the last (largest) element; undefined on an empty run."""
        return self.keys[-1]

    @property
    def head_key(self):
        """Key of the first live (smallest) element."""
        return self.keys[self.start]

    def append(self, key, item):
        """Append an element; caller guarantees ``key >= tail_key``."""
        if self.codes is not None:
            self.codes.append(
                code_vs(self.keys[-1], key) if self.keys else full_code(key)
            )
        self.keys.append(key)
        if self.items is not self.keys:
            self.items.append(item)

    def cut_head(self, timestamp):
        """Remove and return the prefix with keys <= ``timestamp``.

        Returns a ``(keys, items)`` pair of new lists (the *head run* of
        Section III-D), each in ascending order; both empty when no element
        qualifies.  In keyless mode the returned pair shares one list.
        Annotated runs return ``(keys, items, codes)`` triples; the first
        code is re-based to the virtual empty predecessor, because the
        element it was coded against stays behind in (or left) the run.
        """
        end = bisect_right(self.keys, timestamp, self.start)
        if end == self.start:
            return ([], [], []) if self.codes is not None else ([], [])
        head_keys = self.keys[self.start:end]
        if self.items is self.keys:
            head_items = head_keys
        else:
            head_items = self.items[self.start:end]
        head_codes = None
        if self.codes is not None:
            head_codes = self.codes[self.start:end]
            head_codes[0] = full_code(head_keys[0])
        self.start = end
        self._maybe_compact()
        if head_codes is not None:
            return head_keys, head_items, head_codes
        return head_keys, head_items

    def _maybe_compact(self):
        if self.start > _COMPACT_THRESHOLD and self.start * 2 > len(self.keys):
            if self.items is not self.keys:
                del self.items[: self.start]
            if self.codes is not None:
                del self.codes[: self.start]
            del self.keys[: self.start]
            self.start = 0

    def live(self):
        """The live ``(keys, items)`` view as freshly sliced lists.

        Annotated runs return a ``(keys, items, codes)`` triple with the
        first code re-based to the virtual empty predecessor.
        """
        keys = self.keys[self.start:]
        if self.items is self.keys:
            items = keys
        else:
            items = self.items[self.start:]
        if self.codes is not None:
            codes = self.codes[self.start:]
            if codes:
                codes[0] = full_code(keys[0])
            return keys, items, codes
        return keys, items

    def __repr__(self):
        n = len(self)
        if not n:
            return "SortedRun(empty)"
        return f"SortedRun(len={n}, head={self.head_key!r}, tail={self.tail_key!r})"


class RunPool:
    """The partition-phase state: live runs plus their descending tails.

    ``insert`` implements the Patience placement rule — append to the first
    run whose tail is <= the new key, else open a new run — with the
    optional speculative-run-selection (SRS) fast path that first probes the
    run that received the previous element (Section III-E2).

    ``placement`` picks how an SRS miss finds the first eligible run:
    ``"bisect"`` (default) keeps a parallel *negated* tails list in
    ascending order and binary-searches it with the C-implemented
    :func:`bisect.bisect_left`; ``"binary"`` is the pure-Python binary
    search over the descending tails, kept for the Figure 8 ablation.
    Keys that cannot be negated (non-numeric sort keys) silently demote
    ``"bisect"`` to ``"binary"`` on first contact.

    ``annotate=True`` maintains offset-value codes on every run (string
    sort keys feeding the ``"ovc"`` merge strategy); pools seeing a
    non-string first key silently demote annotation the same way
    ``"bisect"`` placement demotes, so the flag is safe to set even when
    the key type is unknown up front.
    """

    __slots__ = ("runs", "tails", "neg_tails", "speculative", "keyless",
                 "annotate", "stats", "_last")

    def __init__(self, speculative: bool = True, keyless: bool = False,
                 stats=None, placement: str = "bisect",
                 annotate: bool = False):
        if placement not in ("bisect", "binary"):
            raise ValueError(
                f"placement must be 'bisect' or 'binary', not {placement!r}"
            )
        self.runs: list[SortedRun] = []
        #: keys of run tails, strictly descending; parallel to ``runs``.
        self.tails = []
        #: negated tails, strictly ascending (``bisect``-searchable);
        #: ``None`` when placement is (or was demoted to) ``"binary"``.
        self.neg_tails = [] if placement == "bisect" else None
        self.speculative = speculative
        #: items are their own keys: runs store one shared list.
        self.keyless = keyless
        #: maintain OVC codes on runs (demoted on non-string keys).
        self.annotate = bool(annotate)
        self.stats = stats
        self._last = -1

    def __len__(self) -> int:
        return len(self.runs)

    def insert(self, key, item):
        """Place one element, preserving the descending-tails invariant."""
        if self.annotate and not isinstance(key, (bytes, str)):
            self.annotate = False
        tails = self.tails
        n = len(tails)
        last = self._last
        if (
            self.speculative
            and 0 <= last < n
            and tails[last] <= key
            and (last == 0 or tails[last - 1] > key)
        ):
            # SRS hit: the element extends the same run as its predecessor.
            idx = last
            if self.stats is not None:
                self.stats.srs_hits += 1
        else:
            idx = self._search(key)
            if self.stats is not None:
                self.stats.binary_searches += 1
        if idx == n:
            run = SortedRun(keyless=self.keyless, annotate=self.annotate)
            run.append(key, item)
            self.runs.append(run)
            tails.append(key)
            if self.neg_tails is not None:
                self.neg_tails.append(-key)
            if self.stats is not None:
                self.stats.runs_created += 1
        else:
            self.runs[idx].append(key, item)
            tails[idx] = key
            if self.neg_tails is not None:
                try:
                    self.neg_tails[idx] = -key
                except TypeError:
                    self.neg_tails = None
        self._last = idx

    def _search(self, key) -> int:
        """First index whose tail is <= ``key`` (== len(tails) when none).

        The descending tails order is the wrong way round for
        :mod:`bisect`, so the fast path searches the ascending *negated*
        tails (``tails[i] <= key`` iff ``-tails[i] >= -key``); keys
        without ``-`` demote the pool to the pure-Python binary search.
        """
        if self.neg_tails is not None:
            try:
                return bisect_left(self.neg_tails, -key)
            except TypeError:
                self.neg_tails = None
        tails = self.tails
        lo, hi = 0, len(tails)
        while lo < hi:
            mid = (lo + hi) // 2
            if tails[mid] <= key:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def insert_batch(self, keys, items):
        """Place many elements at once (offline partition hot path).

        ``keys`` and ``items`` are parallel sequences.  Semantically
        identical to calling :meth:`insert` per element, but with the loop
        state held in locals — this is what makes the pure-Python partition
        phase competitive with the tight run-scanning loops of Timsort.
        """
        runs = self.runs
        tails = self.tails
        neg_tails = self.neg_tails
        speculative = self.speculative
        keyless = self.keyless
        last = self._last
        srs_hits = 0
        searches = 0
        created = 0
        if keyless:
            items = keys
        if self.annotate:
            for key in keys:
                if not isinstance(key, (bytes, str)):
                    self.annotate = False
                break
        annotate = self.annotate
        nk = None
        for key, item in zip(keys, items):
            n = len(tails)
            if neg_tails is not None:
                try:
                    nk = -key
                except TypeError:
                    neg_tails = self.neg_tails = None
            if (
                speculative
                and 0 <= last < n
                and tails[last] <= key
                and (last == 0 or tails[last - 1] > key)
            ):
                idx = last
                srs_hits += 1
            else:
                if neg_tails is not None:
                    idx = bisect_left(neg_tails, nk)
                else:
                    lo, hi = 0, n
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if tails[mid] <= key:
                            hi = mid
                        else:
                            lo = mid + 1
                    idx = lo
                searches += 1
            if idx == n:
                run = SortedRun(keyless=keyless, annotate=annotate)
                if annotate:
                    run.codes.append(full_code(key))
                run.keys.append(key)
                if not keyless:
                    run.items.append(item)
                runs.append(run)
                tails.append(key)
                if neg_tails is not None:
                    neg_tails.append(nk)
                created += 1
            else:
                run = runs[idx]
                if annotate:
                    run.codes.append(code_vs(run.keys[-1], key))
                run.keys.append(key)
                if not keyless:
                    run.items.append(item)
                tails[idx] = key
                if neg_tails is not None:
                    neg_tails[idx] = nk
            last = idx
        self._last = last
        if self.stats is not None:
            self.stats.srs_hits += srs_hits
            self.stats.binary_searches += searches
            self.stats.runs_created += created

    def cut_heads(self, timestamp):
        """Cut every run's head at ``timestamp``; drop emptied runs.

        Returns the list of non-empty ``(keys, items)`` head runs.  Runs that
        become empty are removed from the pool (the "gradual clean-up" that
        distinguishes Impatience from Patience sort — Figure 5).
        """
        heads = []
        survivors = []
        surviving_tails = []
        removed = 0
        for run, tail in zip(self.runs, self.tails):
            if run.head_key <= timestamp:
                head = run.cut_head(timestamp)
                heads.append(head)
                if not run:
                    removed += 1
                    continue
            survivors.append(run)
            surviving_tails.append(tail)
        if removed:
            self.runs = survivors
            self.tails = surviving_tails
            if self.neg_tails is not None:
                self.neg_tails = [-tail for tail in surviving_tails]
            self._last = -1  # indices shifted; invalidate the SRS hint
            if self.stats is not None:
                self.stats.runs_removed += removed
        return heads

    def drain(self):
        """Remove and return all live runs as ``(keys, items)`` pairs
        (``(keys, items, codes)`` triples when the pool is annotated)."""
        heads = [run.live() for run in self.runs if run]
        self.runs = []
        self.tails = []
        if self.neg_tails is not None:
            self.neg_tails = []
        self._last = -1
        return heads

    def check_invariants(self):
        """Assert the structural invariants (used by tests, not hot paths)."""
        assert len(self.runs) == len(self.tails)
        for run, tail in zip(self.runs, self.tails):
            assert run, "pool holds an empty run"
            assert run.tail_key == tail, "tails array out of sync"
            live = run.live()
            keys = live[0]
            assert all(a <= b for a, b in zip(keys, keys[1:])), (
                "run not ascending"
            )
            if run.codes is not None:
                assert len(run.codes) == len(run.keys), (
                    "OVC codes out of sync with keys"
                )
                assert live[2] == ovc_annotate(keys), (
                    "OVC annotation does not match recomputation"
                )
        assert all(
            a > b for a, b in zip(self.tails, self.tails[1:])
        ), "tails not strictly descending"
        if self.neg_tails is not None:
            assert self.neg_tails == [-tail for tail in self.tails], (
                "negated tails out of sync"
            )
