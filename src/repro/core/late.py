"""Policies for events that arrive after their punctuation has passed.

The paper (Section I-A) notes that with buffer-and-sort, "events that arrive
after the specified reorder latency have to be either discarded or adjusted
(on timestamps)".  Both choices are offered here, plus a strict mode that
raises, which is useful in tests.
"""

from __future__ import annotations

import enum

from repro.core.errors import LateEventError

__all__ = ["LatePolicy", "LateEventTracker"]


class LatePolicy(enum.Enum):
    """What to do with an event whose time is <= the last punctuation."""

    #: Silently drop the event (counted by :class:`LateEventTracker`).
    DROP = "drop"
    #: Adjust the event's time forward to just after the last punctuation.
    ADJUST = "adjust"
    #: Raise :class:`repro.core.errors.LateEventError`.
    RAISE = "raise"


class LateEventTracker:
    """Applies a :class:`LatePolicy` and keeps counts for completeness audits.

    The tracker is shared by sorters and ingress sites so that Table II-style
    completeness numbers (fraction of events preserved) can be computed after
    a run.

    ``quarantine`` (usually attached by a supervisor rather than passed at
    construction) is an optional dead-letter ledger — with one attached, a
    late event under :data:`LatePolicy.RAISE` is recorded there with reason
    ``"late-event"`` and excluded from the output instead of killing the
    run.
    """

    __slots__ = ("policy", "dropped", "adjusted", "quarantined", "total",
                 "quarantine")

    def __init__(self, policy: LatePolicy = LatePolicy.DROP,
                 quarantine=None):
        self.policy = policy
        self.dropped = 0
        self.adjusted = 0
        self.quarantined = 0
        self.total = 0
        self.quarantine = quarantine

    def admit(self, event_time, punctuation_time):
        """Decide the fate of a late event.

        Returns the (possibly adjusted) event time to use, or ``None`` if the
        event must be dropped.  ``punctuation_time`` is the most recent
        punctuation the event missed.
        """
        self.total += 1
        if self.policy is LatePolicy.RAISE:
            if self.quarantine is None:
                raise LateEventError(event_time, punctuation_time)
            self.quarantined += 1
            self.quarantine.record(
                "late-event", event_time, watermark=punctuation_time,
            )
            return None
        if self.policy is LatePolicy.DROP:
            self.dropped += 1
            return None
        self.adjusted += 1
        return punctuation_time

    @property
    def preserved(self) -> int:
        """Number of late events that were kept (after adjustment)."""
        return self.total - self.dropped - self.quarantined

    def completeness(self, total_events: int) -> float:
        """Fraction of ``total_events`` not excluded (1.0 when none late)."""
        if total_events <= 0:
            return 1.0
        return 1.0 - (self.dropped + self.quarantined) / total_events

    def __repr__(self):
        return (
            f"LateEventTracker(policy={self.policy.value}, "
            f"dropped={self.dropped}, adjusted={self.adjusted}, "
            f"quarantined={self.quarantined})"
        )
