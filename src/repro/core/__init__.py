"""The paper's primary contribution: Patience/Impatience sort and friends."""

from repro.core.errors import (
    ChaosSpecError,
    CheckpointError,
    DatasetFormatError,
    LateEventError,
    MalformedEventError,
    PunctuationOrderError,
    QueryBuildError,
    ReplayDivergenceError,
    ReproError,
    SpillCorruptionError,
    SupervisionExhaustedError,
)
from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.merge import (
    MERGE_STRATEGIES,
    huffman_merge,
    kway_heap_merge,
    merge_runs,
    merge_two,
    pairwise_merge,
)
from repro.core.patience import PatienceSorter, patience_sort
from repro.core.runs import RunPool, SortedRun
from repro.core.stats import SorterStats

__all__ = [
    "ChaosSpecError",
    "CheckpointError",
    "ColumnarImpatienceSorter",
    "DatasetFormatError",
    "ImpatienceSorter",
    "LateEventError",
    "MalformedEventError",
    "ReplayDivergenceError",
    "SpillCorruptionError",
    "SupervisionExhaustedError",
    "LateEventTracker",
    "LatePolicy",
    "MERGE_STRATEGIES",
    "PatienceSorter",
    "patience_sort",
    "PunctuationOrderError",
    "QueryBuildError",
    "ReproError",
    "RunPool",
    "SortedRun",
    "SorterStats",
    "huffman_merge",
    "kway_heap_merge",
    "merge_runs",
    "merge_two",
    "pairwise_merge",
]
