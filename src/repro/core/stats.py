"""Statistics collected by sorters.

Figure 5 of the paper plots the number of sorted runs over time for Patience
versus Impatience sort; the ablation rows of Figure 7 depend on knowing how
much work the Huffman-merge and speculative-run-selection optimizations save.
``SorterStats`` is a cheap, always-on counter bundle that every sorter in
this library exposes as ``.stats``.
"""

from __future__ import annotations

__all__ = ["SorterStats"]


class SorterStats:
    """Counter bundle shared by all sorters in :mod:`repro`.

    Attributes
    ----------
    inserted:
        Total events inserted into the sorter.
    emitted:
        Total events emitted (via punctuations or a final flush).
    runs_created:
        Number of sorted runs created during the partition phase.
    runs_removed:
        Runs that became empty after a head cut and were discarded
        (Impatience sort only; always 0 for offline Patience sort).
    srs_hits:
        Inserts placed by speculative run selection without a binary search.
    binary_searches:
        Inserts that required a binary search over the tails array.
    merge_events:
        Events read during merge phases.  With an optimal (Huffman) merge
        schedule this is the weighted external path length of the merge tree.
    merges:
        Number of two-way (or k-way) merge operations performed.
    max_buffered:
        High-water mark of events resident in the sorter at once.
    run_count_history:
        ``(events_inserted, live_runs)`` samples, recorded at punctuations
        (and optionally on a sampling interval) — the Figure 5 series.
    """

    __slots__ = (
        "inserted",
        "emitted",
        "runs_created",
        "runs_removed",
        "srs_hits",
        "binary_searches",
        "merge_events",
        "merges",
        "max_buffered",
        "run_count_history",
    )

    def __init__(self):
        self.inserted = 0
        self.emitted = 0
        self.runs_created = 0
        self.runs_removed = 0
        self.srs_hits = 0
        self.binary_searches = 0
        self.merge_events = 0
        self.merges = 0
        self.max_buffered = 0
        self.run_count_history = []

    @property
    def buffered(self) -> int:
        """Events currently held by the sorter."""
        return self.inserted - self.emitted

    def note_buffered(self):
        """Update the buffered-events high-water mark."""
        buffered = self.inserted - self.emitted
        if buffered > self.max_buffered:
            self.max_buffered = buffered

    def sample_runs(self, live_runs: int):
        """Record a Figure 5 sample: (#inserted so far, #live runs)."""
        self.run_count_history.append((self.inserted, live_runs))

    def as_dict(self) -> dict:
        """Snapshot of every scalar counter (history excluded)."""
        return {
            "inserted": self.inserted,
            "emitted": self.emitted,
            "runs_created": self.runs_created,
            "runs_removed": self.runs_removed,
            "srs_hits": self.srs_hits,
            "binary_searches": self.binary_searches,
            "merge_events": self.merge_events,
            "merges": self.merges,
            "max_buffered": self.max_buffered,
        }

    def __repr__(self):
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SorterStats({parts})"
