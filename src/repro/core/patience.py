"""Offline Patience sort (Section III-B of the paper).

Patience sort partitions the input into ascending runs by dealing each
element onto the first run whose tail is <= it (binary search over the
strictly descending tails array), then merges all runs.  It is adaptive: the
number of runs k is bounded by each of the paper's disorder measures
(Propositions 3.1–3.3), so nearly sorted inputs produce few runs and merge
almost for free.

This module is the *offline* algorithm — sorting happens only after all
input is seen.  The incremental variant lives in
:mod:`repro.core.impatience`.
"""

from __future__ import annotations

from repro.core.merge import merge_runs
from repro.core.runs import RunPool
from repro.core.stats import SorterStats

__all__ = ["PatienceSorter", "patience_sort"]


class PatienceSorter:
    """Offline Patience sort with pluggable merge schedule.

    Parameters
    ----------
    key:
        Sort-key extractor; ``None`` sorts items by themselves.
    merge:
        Merge schedule name — ``"huffman"`` (default), ``"pairwise"`` or
        ``"kway"``; see :mod:`repro.core.merge`.
    speculative:
        Enable speculative run selection in the partition phase.  Offline
        Patience sort in the paper does not use SRS, so the default is
        ``False``; Figure 7's ablations toggle it.
    sample_every:
        When set, record a Figure 5 run-count sample every that many
        inserts into ``stats.run_count_history``.
    """

    def __init__(self, key=None, merge="huffman", speculative=False,
                 sample_every=None):
        self.key = key
        self.merge = merge
        self.stats = SorterStats()
        self.sample_every = sample_every
        self._pool = RunPool(speculative=speculative, keyless=key is None,
                             stats=self.stats)

    @property
    def run_count(self) -> int:
        """Number of live sorted runs (the paper's k)."""
        return len(self._pool)

    def insert(self, item):
        """Deal one item onto a run (the partition phase)."""
        key = item if self.key is None else self.key(item)
        self._pool.insert(key, item)
        self.stats.inserted += 1
        if (
            self.sample_every
            and self.stats.inserted % self.sample_every == 0
        ):
            self.stats.sample_runs(len(self._pool))

    def extend(self, items):
        """Insert every item from an iterable (batched hot path).

        Equivalent to calling :meth:`insert` per item; run-count sampling
        is honored by chunking batches at the sampling interval.
        """
        items = list(items)
        keys = items if self.key is None else list(map(self.key, items))
        step = self.sample_every
        if not step:
            self._pool.insert_batch(keys, items)
            self.stats.inserted += len(items)
            return
        start = 0
        while start < len(items):
            chunk = step - self.stats.inserted % step
            end = start + chunk
            self._pool.insert_batch(keys[start:end], items[start:end])
            self.stats.inserted += min(end, len(items)) - start
            if self.stats.inserted % step == 0:
                self.stats.sample_runs(len(self._pool))
            start = end

    def result(self):
        """Run the merge phase and return the fully sorted item list.

        The sorter is drained: after this call it is empty and reusable.
        """
        runs = self._pool.drain()
        keys, items = merge_runs(runs, self.merge, self.stats)
        self.stats.emitted += len(items)
        return items


def patience_sort(items, key=None, merge="huffman"):
    """Sort a sequence with offline Patience sort; returns a new list."""
    sorter = PatienceSorter(key=key, merge=merge)
    sorter.extend(items)
    return sorter.result()
